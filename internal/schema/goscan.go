package schema

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"

	"objectswap/internal/heap"
)

// Marker is the magic comment that opts a Go struct declaration into obicomp
// code generation, by analogy with the paper's compiler processing annotated
// application classes:
//
//	//obiswap:class
//	type Contact struct {
//		Name  string
//		Vcard []byte
//		Next  *Contact
//	}
//
// Field types map onto heap kinds: int/int64 -> int, float64 -> float,
// bool -> bool, string -> string, []byte -> bytes, a pointer to any struct
// or heap.ObjID -> ref, []heap.Value -> list. Exported Go field names become
// lower-cased schema field names (Name -> name). The struct itself is an IDL
// declaration only — no code is generated FROM its body, and instances live
// in the managed heap, not as Go values.
const Marker = "obiswap:class"

// ParseGoSource scans one annotated Go source file and returns the schema it
// declares. A file with no annotated structs yields a schema with the file's
// package name and no classes (callers merging a directory skip it).
func ParseGoSource(filename string, src []byte) (*Schema, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	out := &Schema{Package: f.Name.Name}
	seen := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if !marked(gd.Doc) && !marked(ts.Doc) {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return nil, fmt.Errorf("%w: %s: %s is annotated %s but is not a struct",
					ErrBadSchema, filename, ts.Name.Name, Marker)
			}
			c, err := classFromStruct(filename, ts.Name.Name, st)
			if err != nil {
				return nil, err
			}
			if seen[c.Name] {
				return nil, fmt.Errorf("%w: %s: duplicate class %q", ErrBadSchema, filename, c.Name)
			}
			seen[c.Name] = true
			out.Classes = append(out.Classes, *c)
		}
	}
	return out, nil
}

// marked reports whether a doc comment carries the obiswap:class marker.
func marked(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(text) == Marker {
			return true
		}
	}
	return false
}

func classFromStruct(filename, name string, st *ast.StructType) (*Class, error) {
	if !isIdent(name) {
		return nil, fmt.Errorf("%w: %s: class name %q", ErrBadSchema, filename, name)
	}
	c := &Class{Name: name}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			return nil, fmt.Errorf("%w: %s.%s: embedded fields are not supported",
				ErrBadSchema, filename, name)
		}
		kind, err := kindOfExpr(field.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %s.%s: %v",
				ErrBadSchema, filename, name, field.Names[0].Name, err)
		}
		for _, fn := range field.Names {
			if !ast.IsExported(fn.Name) {
				return nil, fmt.Errorf("%w: %s: %s.%s must be exported",
					ErrBadSchema, filename, name, fn.Name)
			}
			c.Fields = append(c.Fields, Field{Name: lowerFirst(fn.Name), Kind: kind})
		}
	}
	if len(c.Fields) == 0 {
		return nil, fmt.Errorf("%w: %s: class %s has no fields", ErrBadSchema, filename, name)
	}
	return c, nil
}

// kindOfExpr maps a struct field's type expression to a heap kind.
func kindOfExpr(t ast.Expr) (heap.Kind, error) {
	switch x := t.(type) {
	case *ast.Ident:
		switch x.Name {
		case "int", "int64":
			return heap.KindInt, nil
		case "float64":
			return heap.KindFloat, nil
		case "bool":
			return heap.KindBool, nil
		case "string":
			return heap.KindString, nil
		}
	case *ast.StarExpr:
		// A pointer to any named type is a managed reference.
		switch x.X.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return heap.KindRef, nil
		}
	case *ast.SelectorExpr:
		if pkg, ok := x.X.(*ast.Ident); ok && pkg.Name == "heap" {
			switch x.Sel.Name {
			case "ObjID":
				return heap.KindRef, nil
			case "Value":
				return 0, fmt.Errorf("use a concrete type or []heap.Value")
			}
		}
	case *ast.ArrayType:
		if x.Len != nil {
			break // fixed-size arrays have no kind mapping
		}
		switch elem := x.Elt.(type) {
		case *ast.Ident:
			if elem.Name == "byte" {
				return heap.KindBytes, nil
			}
		case *ast.SelectorExpr:
			if pkg, ok := elem.X.(*ast.Ident); ok && pkg.Name == "heap" && elem.Sel.Name == "Value" {
				return heap.KindList, nil
			}
		}
	}
	return 0, fmt.Errorf("unsupported field type (want int64, float64, bool, string, []byte, *T, heap.ObjID or []heap.Value)")
}
