package gentest

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/schema"
	"objectswap/internal/store"
	"objectswap/internal/wire"
	"objectswap/internal/xmlcodec"
)

// TestGeneratedFilesInSync is the golden-file gate: regenerating from
// model.go must reproduce the committed output byte for byte. A failure means
// either the generator changed (rerun `go generate ./internal/schema/gentest`
// and commit) or a generated file was hand-edited.
func TestGeneratedFilesInSync(t *testing.T) {
	src, err := os.ReadFile("model.go")
	if err != nil {
		t.Fatal(err)
	}
	s, err := schema.ParseGoSource("model.go", src)
	if err != nil {
		t.Fatal(err)
	}
	files, err := schema.GenerateFiles(s)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"record_gen.go": true, "register_gen.go": true, "schema_gen.xml": true}
	for _, f := range files {
		if !want[f.Name] {
			t.Errorf("unexpected generated file %s", f.Name)
		}
		delete(want, f.Name)
		disk, err := os.ReadFile(f.Name)
		if err != nil {
			t.Fatalf("%s: %v (rerun go generate ./internal/schema/gentest)", f.Name, err)
		}
		if !bytes.Equal(disk, f.Data) {
			t.Errorf("%s is stale — rerun go generate ./internal/schema/gentest", f.Name)
		}
	}
	for name := range want {
		t.Errorf("generator no longer emits %s", name)
	}
}

// synthesizedRecordClass hand-builds the closure-table equivalent of the
// generated Record class: same fields, same accessor names, with every method
// going through AddMethod closures and the default registration-time ops.
func synthesizedRecordClass() *heap.Class {
	c := heap.NewClass("Record", recordFieldDefs[:]...)
	for i := range recordFieldDefs {
		name := recordFieldDefs[i].Name
		suffix := strings.ToUpper(name[:1]) + name[1:]
		c.AddMethod("get"+suffix, func(call *heap.Call) ([]heap.Value, error) {
			v, err := call.Self.FieldByName(name)
			if err != nil {
				return nil, err
			}
			return []heap.Value{v}, nil
		})
		c.AddMethod("set"+suffix, func(call *heap.Call) ([]heap.Value, error) {
			return nil, call.RT.SetFieldValue(call.Self.RefTo(), name, call.Arg(0))
		})
	}
	return c
}

func newRuntime() *core.Runtime {
	devices := store.NewRegistry(store.SelectMostFree)
	_ = devices.Add("d", store.NewMem(0))
	return core.NewRuntime(heap.New(0), heap.NewRegistry(), core.WithStores(devices))
}

// TestGeneratedAccessorsAgree drives the generated static-dispatch class and
// the hand-synthesized closure class through the same accessor script in two
// identical runtimes and requires identical observable behavior — the
// cross-oracle for dispatch: obicomp output must be indistinguishable from
// the closures it replaces.
func TestGeneratedAccessorsAgree(t *testing.T) {
	gen, syn := NewRecordClass(), synthesizedRecordClass()

	if g, s := gen.MethodNames(), syn.MethodNames(); !reflect.DeepEqual(g, s) {
		t.Fatalf("method sets differ: generated %v vs synthesized %v", g, s)
	}
	for i := range recordFieldDefs {
		name := recordFieldDefs[i].Name
		gi, gok := gen.FieldIndex(name)
		si, sok := syn.FieldIndex(name)
		if gi != si || gok != sok {
			t.Fatalf("FieldIndex(%q): generated (%d,%v) vs synthesized (%d,%v)", name, gi, gok, si, sok)
		}
	}

	run := func(c *heap.Class) []string {
		rt := newRuntime()
		rt.MustRegisterClass(c)
		c1, c2 := rt.Manager().NewCluster(), rt.Manager().NewCluster()
		a, err := rt.NewObject(c, c1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rt.NewObject(c, c2)
		if err != nil {
			t.Fatal(err)
		}
		script := []struct {
			method string
			args   []heap.Value
		}{
			{"setTitle", []heap.Value{heap.Str("alpha")}},
			{"setSeq", []heap.Value{heap.Int(-42)}},
			{"setWeight", []heap.Value{heap.Float(2.5)}},
			{"setDirty", []heap.Value{heap.Bool(true)}},
			{"setBlob", []heap.Value{heap.Bytes([]byte{1, 2, 3})}},
			{"setNext", []heap.Value{b.RefTo()}}, // cross-cluster: must be mediated
			{"setTags", []heap.Value{heap.List(heap.Str("hot"), heap.Int(7))}},
			{"getTitle", nil}, {"getSeq", nil}, {"getWeight", nil},
			{"getDirty", nil}, {"getBlob", nil}, {"getTags", nil},
			{"getMissing", nil}, // unknown method: same error on both
		}
		var trace []string
		for _, step := range script {
			out, err := rt.Invoke(a.RefTo(), step.method, step.args...)
			trace = append(trace, fmt.Sprintf("%s -> %v err=%v", step.method, out, err))
		}
		// The mediated cross-cluster reference must be a proxy in both
		// worlds; record the interception outcome, not the unstable IDs.
		nv, err := a.FieldByName("next")
		trace = append(trace, fmt.Sprintf("next proxied=%v err=%v", rt.IsProxyRef(nv), err))
		return trace
	}

	got, want := run(gen), run(syn)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("accessor traces diverge:\ngenerated:   %v\nsynthesized: %v", got, want)
	}
}

// recordDoc builds a shipment document of n Record objects exercising all
// seven compiled field kinds.
func recordDoc(n int) *xmlcodec.Doc {
	payload := make([]byte, 192)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	doc := &xmlcodec.Doc{ClusterID: "gentest-swapcluster", Version: xmlcodec.Version}
	for i := 0; i < n; i++ {
		id := heap.ObjID(i + 1)
		doc.Objects = append(doc.Objects, xmlcodec.Object{
			ID:    id,
			Class: "Record",
			Fields: []xmlcodec.Field{
				{Name: "title", Value: xmlcodec.Value{Kind: heap.KindString, S: fmt.Sprintf("rec-%d", i)}},
				{Name: "seq", Value: xmlcodec.Value{Kind: heap.KindInt, I: int64(i)*31 - 7}},
				{Name: "weight", Value: xmlcodec.Value{Kind: heap.KindFloat, F: float64(i) * 0.25}},
				{Name: "dirty", Value: xmlcodec.Value{Kind: heap.KindBool, B: i%2 == 1}},
				{Name: "blob", Value: xmlcodec.Value{Kind: heap.KindBytes, Data: payload}},
				{Name: "next", Value: xmlcodec.InternalRef(heap.ObjID(i%n + 1))},
				{Name: "tags", Value: xmlcodec.Value{Kind: heap.KindList, List: []xmlcodec.Value{
					{Kind: heap.KindString, S: "hot"},
					{Kind: heap.KindInt, I: int64(i)},
				}}},
			},
		})
	}
	return doc
}

func recordCodecs() *wire.ClassCodecs {
	cc := wire.NewClassCodecs()
	cc.Bind(recordOps{}.WireCodec())
	return cc
}

// TestGeneratedCodecByteIdentical: the committed generated codec must write
// the same OBW bytes as the generic reflective path and decode them back to
// the same document.
func TestGeneratedCodecByteIdentical(t *testing.T) {
	doc := recordDoc(16)
	cc := recordCodecs()
	for _, format := range []wire.FormatID{wire.FormatBinary, wire.FormatFlate} {
		generic, err := wire.Encode(format, doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := wire.Encode(format, doc, &wire.EncodeOpts{Codecs: cc})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(generic, gen) {
			t.Fatalf("%s: generated codec changed the frame bytes", format)
		}
		back, err := wire.Decode(gen, &wire.DecodeOpts{Codecs: cc})
		if err != nil {
			t.Fatal(err)
		}
		wantXML, err := doc.Encode()
		if err != nil {
			t.Fatal(err)
		}
		gotXML, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotXML, wantXML) {
			t.Fatalf("%s: generated codec decode diverged from the document", format)
		}
	}
}

// FuzzGeneratedCodec fuzzes field payloads through the committed generated
// codec: whatever the values, the frame bytes must match the generic path
// exactly and decode losslessly.
func FuzzGeneratedCodec(f *testing.F) {
	f.Add("alpha", int64(1), 0.5, true, []byte{9, 8, 7}, uint8(3))
	f.Add("", int64(-1<<40), -0.0, false, []byte{}, uint8(1))
	f.Add("uni\x00code \"&<>\"", int64(1<<62), 1e300, true, []byte{0xff}, uint8(5))
	f.Fuzz(func(t *testing.T, title string, seq int64, weight float64, dirty bool, blob []byte, n uint8) {
		objs := int(n%7) + 1
		doc := recordDoc(objs)
		for i := range doc.Objects {
			fs := doc.Objects[i].Fields
			fs[0].Value = xmlcodec.Value{Kind: heap.KindString, S: title}
			fs[1].Value = xmlcodec.Value{Kind: heap.KindInt, I: seq + int64(i)}
			fs[2].Value = xmlcodec.Value{Kind: heap.KindFloat, F: weight}
			fs[3].Value = xmlcodec.Value{Kind: heap.KindBool, B: dirty}
			fs[4].Value = xmlcodec.Value{Kind: heap.KindBytes, Data: blob}
		}
		oracle, err := doc.Encode()
		if err != nil {
			t.Skip("oracle rejects document")
		}
		cc := recordCodecs()
		generic, err := wire.Encode(wire.FormatBinary, doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := wire.Encode(wire.FormatBinary, doc, &wire.EncodeOpts{Codecs: cc})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(generic, gen) {
			t.Fatal("generated codec changed the frame bytes")
		}
		back, err := wire.Decode(gen, &wire.DecodeOpts{Codecs: cc})
		if err != nil {
			t.Fatal(err)
		}
		backXML, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(backXML, oracle) {
			t.Fatal("generated codec decode diverged from the XML oracle")
		}
	})
}

func benchRuntime(b *testing.B, c *heap.Class) (*core.Runtime, heap.Value) {
	b.Helper()
	rt := newRuntime()
	rt.MustRegisterClass(c)
	o, err := rt.NewObject(c, rt.Manager().NewCluster())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Invoke(o.RefTo(), "setSeq", heap.Int(77)); err != nil {
		b.Fatal(err)
	}
	return rt, o.RefTo()
}

// BenchmarkDispatchGenerated measures one accessor call through the
// generated static switch.
func BenchmarkDispatchGenerated(b *testing.B) {
	rt, ref := benchRuntime(b, NewRecordClass())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(ref, "getSeq"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchSynthesized measures the same call through the closure
// table the generator replaces.
func BenchmarkDispatchSynthesized(b *testing.B) {
	rt, ref := benchRuntime(b, synthesizedRecordClass())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Invoke(ref, "getSeq"); err != nil {
			b.Fatal(err)
		}
	}
}

const benchDocObjects = 64

// BenchmarkDecodeGeneric decodes a Record shipment through the reflective
// per-value switch.
func BenchmarkDecodeGeneric(b *testing.B) {
	data, err := wire.Encode(wire.FormatBinary, recordDoc(benchDocObjects), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeGenerated decodes the identical bytes through the generated
// typed codec (borrowed-blob contract: no defensive arena copy).
func BenchmarkDecodeGenerated(b *testing.B) {
	data, err := wire.Encode(wire.FormatBinary, recordDoc(benchDocObjects), nil)
	if err != nil {
		b.Fatal(err)
	}
	opts := &wire.DecodeOpts{Codecs: recordCodecs()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGenBenchSmoke is the check.sh generated-codec gate: decoding through
// the generated codec must allocate strictly less than the generic path (the
// borrowed-blob contract saves the arena copy), and generated dispatch must
// not regress past the closure table it replaces. Alloc counts are
// deterministic; the dispatch ratio gets 1.5x slack for noisy machines.
func TestGenBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark smoke skipped in -short mode")
	}
	decGeneric := testing.Benchmark(BenchmarkDecodeGeneric)
	decGen := testing.Benchmark(BenchmarkDecodeGenerated)
	t.Logf("decode: generic %d allocs/op %d ns/op, generated %d allocs/op %d ns/op",
		decGeneric.AllocsPerOp(), decGeneric.NsPerOp(), decGen.AllocsPerOp(), decGen.NsPerOp())
	if decGen.AllocsPerOp() >= decGeneric.AllocsPerOp() {
		t.Fatalf("generated decode allocates %d/op, generic %d/op — the specialized codec must allocate strictly less",
			decGen.AllocsPerOp(), decGeneric.AllocsPerOp())
	}
	dispGen := testing.Benchmark(BenchmarkDispatchGenerated)
	dispSyn := testing.Benchmark(BenchmarkDispatchSynthesized)
	t.Logf("dispatch: generated %d ns/op, synthesized %d ns/op", dispGen.NsPerOp(), dispSyn.NsPerOp())
	if float64(dispGen.NsPerOp()) > 1.5*float64(dispSyn.NsPerOp()) {
		t.Fatalf("generated dispatch %d ns/op regressed past synthesized closures %d ns/op",
			dispGen.NsPerOp(), dispSyn.NsPerOp())
	}
}
