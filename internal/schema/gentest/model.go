// Package gentest is obicomp's committed end-to-end fixture: one annotated
// struct covering every field kind, with the generated output checked in next
// to it. The tests in this package prove the three contracts the generator
// makes — output regenerates byte-identically (drift test), generated
// accessors behave exactly like hand-synthesized closure methods, and the
// specialized wire codec never changes an OBW frame byte.
//
//go:generate go run objectswap/cmd/obicomp -dir .
package gentest

import "objectswap/internal/heap"

// Record exercises all seven field kinds the schema language supports.
//
//obiswap:class
type Record struct {
	Title  string
	Seq    int64
	Weight float64
	Dirty  bool
	Blob   []byte
	Next   *Record
	Tags   []heap.Value
}
