// Package schema implements the obicomp front half: it parses XML class
// schemas describing application types and generates the Go boilerplate that
// the OBIWAN compiler produced for Java/C# — class declarations plus
// swapping-safe accessor methods for every field.
//
// In the paper, obicomp processes application classes and emits, per class,
// a proxy type implementing the class's public interface plus the
// ISwapClusterProxy plumbing. In this reproduction the proxy half is
// synthesized at class-registration time (core.Runtime.RegisterClass); what
// remains mechanical — and what this package generates — is the class
// definition itself with get/set accessors that route writes through the
// runtime's reference interception, so hand-written code cannot accidentally
// store un-mediated cross-cluster references.
//
// Schema shape:
//
//	<classes package="model">
//	  <class name="Photo">
//	    <field name="thumb" kind="bytes"/>
//	    <field name="caption" kind="string"/>
//	    <field name="next" kind="ref"/>
//	  </class>
//	</classes>
package schema

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"

	"objectswap/internal/heap"
)

// ErrBadSchema reports a malformed schema document.
var ErrBadSchema = errors.New("schema: malformed class schema")

// Field is one declared field.
type Field struct {
	Name string
	Kind heap.Kind
}

// Class is one declared application class.
type Class struct {
	Name   string
	Fields []Field
}

// Schema is a parsed class-schema document.
type Schema struct {
	Package string
	Classes []Class
}

type xmlSchema struct {
	XMLName xml.Name   `xml:"classes"`
	Package string     `xml:"package,attr"`
	Classes []xmlClass `xml:"class"`
}

type xmlClass struct {
	Name   string     `xml:"name,attr"`
	Fields []xmlField `xml:"field"`
}

type xmlField struct {
	Name string `xml:"name,attr"`
	Kind string `xml:"kind,attr"`
}

// Parse reads and validates a schema document.
func Parse(data []byte) (*Schema, error) {
	var doc xmlSchema
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	if doc.Package == "" {
		return nil, fmt.Errorf("%w: missing package attribute", ErrBadSchema)
	}
	if !isIdent(doc.Package) {
		return nil, fmt.Errorf("%w: package %q is not a valid identifier", ErrBadSchema, doc.Package)
	}
	if len(doc.Classes) == 0 {
		return nil, fmt.Errorf("%w: no classes", ErrBadSchema)
	}
	out := &Schema{Package: doc.Package}
	seenClass := make(map[string]bool)
	for _, xc := range doc.Classes {
		if xc.Name == "" || !isIdent(xc.Name) {
			return nil, fmt.Errorf("%w: class name %q", ErrBadSchema, xc.Name)
		}
		if seenClass[xc.Name] {
			return nil, fmt.Errorf("%w: duplicate class %q", ErrBadSchema, xc.Name)
		}
		seenClass[xc.Name] = true
		c := Class{Name: xc.Name}
		seenField := make(map[string]bool)
		for _, xf := range xc.Fields {
			if xf.Name == "" || !isIdent(xf.Name) {
				return nil, fmt.Errorf("%w: class %s: field name %q", ErrBadSchema, xc.Name, xf.Name)
			}
			if seenField[xf.Name] {
				return nil, fmt.Errorf("%w: class %s: duplicate field %q", ErrBadSchema, xc.Name, xf.Name)
			}
			seenField[xf.Name] = true
			kind, err := heap.KindFromString(xf.Kind)
			if err != nil || kind == heap.KindNil {
				return nil, fmt.Errorf("%w: class %s: field %s: bad kind %q",
					ErrBadSchema, xc.Name, xf.Name, xf.Kind)
			}
			c.Fields = append(c.Fields, Field{Name: xf.Name, Kind: kind})
		}
		if len(c.Fields) == 0 {
			return nil, fmt.Errorf("%w: class %s has no fields", ErrBadSchema, xc.Name)
		}
		out.Classes = append(out.Classes, c)
	}
	return out, nil
}

// isIdent reports whether s is a plausible Go identifier fragment.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// export upper-cases the first letter for generated Go identifiers.
func export(s string) string {
	return strings.ToUpper(s[:1]) + s[1:]
}

// kindExpr renders a heap.Kind constant expression.
func kindExpr(k heap.Kind) string {
	switch k {
	case heap.KindInt:
		return "heap.KindInt"
	case heap.KindFloat:
		return "heap.KindFloat"
	case heap.KindBool:
		return "heap.KindBool"
	case heap.KindString:
		return "heap.KindString"
	case heap.KindBytes:
		return "heap.KindBytes"
	case heap.KindRef:
		return "heap.KindRef"
	case heap.KindList:
		return "heap.KindList"
	default:
		return "heap.KindNil"
	}
}
