package link

import (
	"context"
	"errors"
	"testing"
	"time"

	"objectswap/internal/store"
)

var ctx = context.Background()

func TestTransferTimeModel(t *testing.T) {
	p := Bluetooth1() // 700 Kbps, 30 ms latency
	// 8750 bytes = 70000 bits = 100 ms at 700 Kbps, plus 30 ms latency.
	got := p.TransferTime(8750)
	want := 130 * time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	// Zero bandwidth disables the serialization delay.
	p0 := Profile{Latency: 5 * time.Millisecond}
	if p0.TransferTime(1<<20) != 5*time.Millisecond {
		t.Fatal("zero-bandwidth profile should cost latency only")
	}
}

func TestLinkAccountsTraffic(t *testing.T) {
	clock := &VirtualClock{}
	l := Wrap(store.NewMem(0), Bluetooth1(), clock)

	payload := make([]byte, 8750)
	if err := l.Put(ctx, "k", payload); err != nil {
		t.Fatal(err)
	}
	got, err := l.Get(ctx, "k")
	if err != nil || len(got) != len(payload) {
		t.Fatalf("Get = %d bytes, %v", len(got), err)
	}
	if err := l.Drop(ctx, "k"); err != nil {
		t.Fatal(err)
	}

	st := l.TrafficStats()
	if st.Ops != 3 {
		t.Fatalf("ops = %d", st.Ops)
	}
	if st.BytesSent != 8750 || st.BytesReceived != 8750 {
		t.Fatalf("traffic = %+v", st)
	}
	// Put 130ms + Get 130ms + Drop 30ms = 290ms of virtual link time.
	if clock.Elapsed() != 290*time.Millisecond {
		t.Fatalf("virtual time = %v, want 290ms", clock.Elapsed())
	}
	if st.Delay != clock.Elapsed() {
		t.Fatalf("stats delay %v != clock %v", st.Delay, clock.Elapsed())
	}
	clock.Reset()
	if clock.Elapsed() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestLinkJitterDeterministic(t *testing.T) {
	mk := func() *Link {
		return Wrap(store.NewMem(0), Profile{
			Name: "jittery", Latency: 10 * time.Millisecond, Jitter: 16 * time.Millisecond,
		}, &VirtualClock{})
	}
	run := func(l *Link) time.Duration {
		for i := 0; i < 10; i++ {
			_ = l.Put(ctx, "k", []byte("x"))
		}
		return l.TrafficStats().Delay
	}
	a, b := run(mk()), run(mk())
	if a != b {
		t.Fatalf("jitter not deterministic: %v vs %v", a, b)
	}
	if a <= 100*time.Millisecond {
		t.Fatalf("jitter added nothing: %v", a)
	}
}

func TestLinkFaultInjection(t *testing.T) {
	l := Wrap(store.NewMem(0), Profile{FailEvery: 3}, &VirtualClock{})
	var failures int
	for i := 0; i < 9; i++ {
		if err := l.Put(ctx, "k", []byte("x")); err != nil {
			if !errors.Is(err, store.ErrUnavailable) {
				t.Fatalf("unexpected failure type: %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (every 3rd op)", failures)
	}
	if l.TrafficStats().Failures != 3 {
		t.Fatalf("stats failures = %d", l.TrafficStats().Failures)
	}
}

func TestLinkPropagatesStoreSemantics(t *testing.T) {
	inner := store.NewMem(0)
	l := Wrap(inner, Profile{}, &VirtualClock{})
	if _, err := l.Get(ctx, "missing"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get missing through link: %v", err)
	}
	_ = l.Put(ctx, "a", []byte("1"))
	keys, err := l.Keys(ctx)
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	st, err := l.Stats(ctx)
	if err != nil || st.Items != 1 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}
	if l.Profile().Name != "" {
		t.Fatalf("Profile = %+v", l.Profile())
	}
}

func TestRealClockSleeps(t *testing.T) {
	start := time.Now()
	RealClock{}.Sleep(5 * time.Millisecond)
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("RealClock did not sleep")
	}
}
