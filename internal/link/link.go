// Package link simulates the wireless hop between the constrained device and
// a nearby swapping device.
//
// The paper's prototype moved swapped XML over Bluetooth at 700 Kbps; this
// package wraps any store.Store with a deterministic link model (bandwidth,
// round-trip latency, jitter, fault injection) so transfer behaviour can be
// reproduced and measured without hardware. A Clock abstraction lets tests
// and the transfer benchmarks run on virtual time: delays are computed and
// accounted, not slept.
package link

import (
	"context"
	"fmt"
	"sync"
	"time"

	"objectswap/internal/store"
)

// Clock abstracts the passage of transfer time.
type Clock interface {
	// Sleep accounts d of link time (a real clock blocks, a virtual clock
	// accumulates).
	Sleep(d time.Duration)
}

// RealClock sleeps on the wall clock.
type RealClock struct{}

// Sleep blocks for d.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock accumulates slept time without blocking — virtual transfer
// time for benchmarks.
type VirtualClock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Sleep accumulates d.
func (c *VirtualClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns the total virtual time slept.
func (c *VirtualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Reset clears the accumulated time.
func (c *VirtualClock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

// Profile describes a link's characteristics.
type Profile struct {
	// Name labels the profile in diagnostics.
	Name string
	// BitsPerSecond is the usable throughput. 0 disables bandwidth delay.
	BitsPerSecond int64
	// Latency is the per-operation round-trip overhead.
	Latency time.Duration
	// Jitter adds a deterministic sawtooth 0..Jitter to each operation,
	// advancing per operation (reproducible without randomness).
	Jitter time.Duration
	// FailEvery injects ErrUnavailable on every n-th operation (0 = never).
	FailEvery int
}

// Bluetooth1 is the paper's prototype link: Bluetooth at 700 Kbps with a
// typical 30 ms round trip.
func Bluetooth1() Profile {
	return Profile{Name: "bluetooth-700kbps", BitsPerSecond: 700_000, Latency: 30 * time.Millisecond}
}

// WiFi80211g models a faster neighborhood link for comparison sweeps.
func WiFi80211g() Profile {
	return Profile{Name: "wifi-20mbps", BitsPerSecond: 20_000_000, Latency: 5 * time.Millisecond}
}

// TransferTime computes the modelled time to move n payload bytes.
func (p Profile) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.BitsPerSecond > 0 {
		bits := int64(n) * 8
		d += time.Duration(bits * int64(time.Second) / p.BitsPerSecond)
	}
	return d
}

// Stats aggregates traffic over a link.
type Stats struct {
	Ops           int
	BytesSent     int64 // toward the device (Put payloads)
	BytesReceived int64 // from the device (Get payloads)
	Delay         time.Duration
	Failures      int
}

// Link wraps a Store, imposing the profile's delays on every operation.
type Link struct {
	inner   store.Store
	profile Profile
	clock   Clock

	mu    sync.Mutex
	ops   int
	stats Stats
}

var _ store.Store = (*Link)(nil)

// Wrap returns s behind a simulated link. A nil clock uses the real clock.
func Wrap(s store.Store, p Profile, clock Clock) *Link {
	if clock == nil {
		clock = RealClock{}
	}
	return &Link{inner: s, profile: p, clock: clock}
}

var _ store.Envelope = (*Link)(nil)

// Stats returns a copy of the traffic counters.
func (l *Link) TrafficStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Profile returns the link profile.
func (l *Link) Profile() Profile { return l.profile }

// transfer accounts one operation carrying n payload bytes; it reports an
// injected failure when the profile demands one.
func (l *Link) transfer(n int) error {
	l.mu.Lock()
	l.ops++
	op := l.ops
	d := l.profile.TransferTime(n)
	if l.profile.Jitter > 0 {
		// Deterministic sawtooth over 16 steps.
		d += l.profile.Jitter * time.Duration(op%16) / 16
	}
	fail := l.profile.FailEvery > 0 && op%l.profile.FailEvery == 0
	l.stats.Ops++
	l.stats.Delay += d
	if fail {
		l.stats.Failures++
	}
	l.mu.Unlock()

	l.clock.Sleep(d)
	if fail {
		return fmt.Errorf("%w: link %s dropped operation %d",
			store.ErrUnavailable, l.profile.Name, op)
	}
	return nil
}

// Put forwards after accounting an upstream transfer of the payload.
func (l *Link) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := l.transfer(len(data)); err != nil {
		return err
	}
	l.mu.Lock()
	l.stats.BytesSent += int64(len(data))
	l.mu.Unlock()
	return l.inner.Put(ctx, key, data)
}

// Get forwards, then accounts a downstream transfer of the payload.
func (l *Link) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := l.inner.Get(ctx, key)
	if err != nil {
		// Account the (cheap) failed round trip.
		if terr := l.transfer(0); terr != nil {
			return nil, terr
		}
		return nil, err
	}
	if err := l.transfer(len(data)); err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.stats.BytesReceived += int64(len(data))
	l.mu.Unlock()
	return data, nil
}

// PutEnvelope forwards the format-tagged write after accounting an upstream
// transfer, so a link-wrapped donor accepts exactly the formats its inner
// store does (the Stats it forwards advertise them).
func (l *Link) PutEnvelope(ctx context.Context, key string, data []byte, opts store.PutOpts) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := l.transfer(len(data)); err != nil {
		return err
	}
	l.mu.Lock()
	l.stats.BytesSent += int64(len(data))
	l.mu.Unlock()
	return store.PutWith(ctx, l.inner, key, data, opts)
}

// GetEnvelope forwards, then accounts a downstream transfer of the payload.
func (l *Link) GetEnvelope(ctx context.Context, key string) ([]byte, store.PutOpts, error) {
	if err := ctx.Err(); err != nil {
		return nil, store.PutOpts{}, err
	}
	data, opts, err := store.GetWith(ctx, l.inner, key)
	if err != nil {
		if terr := l.transfer(0); terr != nil {
			return nil, store.PutOpts{}, terr
		}
		return nil, store.PutOpts{}, err
	}
	if err := l.transfer(len(data)); err != nil {
		return nil, store.PutOpts{}, err
	}
	l.mu.Lock()
	l.stats.BytesReceived += int64(len(data))
	l.mu.Unlock()
	return data, opts, nil
}

// Drop forwards after accounting a control round trip.
func (l *Link) Drop(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := l.transfer(0); err != nil {
		return err
	}
	return l.inner.Drop(ctx, key)
}

// Keys forwards after accounting a control round trip.
func (l *Link) Keys(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := l.transfer(0); err != nil {
		return nil, err
	}
	return l.inner.Keys(ctx)
}

// Stats forwards after accounting a control round trip.
func (l *Link) Stats(ctx context.Context) (store.Stats, error) {
	if err := ctx.Err(); err != nil {
		return store.Stats{}, err
	}
	if err := l.transfer(0); err != nil {
		return store.Stats{}, err
	}
	return l.inner.Stats(ctx)
}
