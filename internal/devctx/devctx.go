// Package devctx implements OBIWAN's Context Management module: it abstracts
// the device resources whose values vary during execution — available memory
// and network connectivity — monitors them, and publishes events the policy
// engine reacts to.
package devctx

import (
	"sync"
	"time"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/store"
)

// MemorySample is the payload of memory.threshold / memory.relief events.
type MemorySample struct {
	Used     int64
	Capacity int64
	Fraction float64 // Used/Capacity (0 when unlimited)
	Objects  int
}

// MemoryMonitor watches a device heap and fires edge-triggered events when
// occupancy crosses a threshold fraction: memory.threshold on the way up,
// memory.relief on the way down. Checks are explicit (Check) or periodic
// (Start/Stop).
type MemoryMonitor struct {
	h         *heap.Heap
	bus       *event.Bus
	threshold float64

	mu    sync.Mutex
	above bool
	// edges counts threshold crossings by direction (nil until Instrument).
	edges  *obs.CounterVec
	logger *olog.Logger

	stop chan struct{}
	done chan struct{}
}

// SetLogger emits structured records on threshold edges (nil logs nothing).
func (m *MemoryMonitor) SetLogger(lg *olog.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logger = lg
}

// NewMemoryMonitor builds a monitor firing at the given occupancy fraction
// (e.g. 0.8 = 80%).
func NewMemoryMonitor(h *heap.Heap, bus *event.Bus, threshold float64) *MemoryMonitor {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.8
	}
	return &MemoryMonitor{h: h, bus: bus, threshold: threshold}
}

// Threshold returns the configured occupancy fraction.
func (m *MemoryMonitor) Threshold() float64 { return m.threshold }

// Sample reads the current memory situation.
func (m *MemoryMonitor) Sample() MemorySample {
	st := m.h.StatsSnapshot()
	return MemorySample{
		Used:     st.Used,
		Capacity: st.Capacity,
		Fraction: st.UsedFraction(),
		Objects:  st.Objects,
	}
}

// Check samples occupancy and fires an event on a threshold edge. It returns
// the sample and whether an event fired.
func (m *MemoryMonitor) Check() (MemorySample, bool) {
	s := m.Sample()
	m.mu.Lock()
	wasAbove := m.above
	isAbove := s.Capacity > 0 && s.Fraction >= m.threshold
	m.above = isAbove
	edges, logger := m.edges, m.logger
	m.mu.Unlock()

	switch {
	case isAbove && !wasAbove:
		edges.With("threshold").Inc()
		logger.Warn("memory threshold crossed", "used", s.Used,
			"capacity", s.Capacity, "fraction", s.Fraction)
		m.bus.Emit(event.TopicMemoryThreshold, s)
		return s, true
	case !isAbove && wasAbove:
		edges.With("relief").Inc()
		logger.Info("memory pressure relieved", "used", s.Used,
			"capacity", s.Capacity, "fraction", s.Fraction)
		m.bus.Emit(event.TopicMemoryRelief, s)
		return s, true
	default:
		return s, false
	}
}

// Start launches periodic checking. Call Stop to terminate; Start on a
// running monitor is a no-op.
func (m *MemoryMonitor) Start(interval time.Duration) {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.done = stop, done
	m.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				m.Check()
			case <-stop:
				return
			}
		}
	}()
}

// Stop terminates periodic checking and waits for the worker to exit.
func (m *MemoryMonitor) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// ConnectivityMonitor tracks which nearby devices are reachable, mirrors the
// state into the device registry, and publishes link.up / link.down events.
type ConnectivityMonitor struct {
	bus *event.Bus
	reg *store.Registry

	mu    sync.Mutex
	state map[string]bool
	// obs instruments (nil until Instrument).
	linkGauge   *obs.GaugeVec
	transitions *obs.CounterVec
	logger      *olog.Logger
}

// SetLogger emits structured records on link transitions (nil logs nothing).
func (c *ConnectivityMonitor) SetLogger(lg *olog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logger = lg
}

// NewConnectivityMonitor builds a monitor over the device registry.
func NewConnectivityMonitor(bus *event.Bus, reg *store.Registry) *ConnectivityMonitor {
	return &ConnectivityMonitor{bus: bus, reg: reg, state: make(map[string]bool)}
}

// Set records a device's reachability, updating the registry and firing an
// event on every change of state.
func (c *ConnectivityMonitor) Set(name string, up bool) {
	c.mu.Lock()
	prev, known := c.state[name]
	c.state[name] = up
	linkGauge, transitions, logger := c.linkGauge, c.transitions, c.logger
	c.mu.Unlock()

	state := 0.0
	if up {
		state = 1
	}
	linkGauge.With(name).Set(state)
	c.reg.SetAvailable(name, up)
	if known && prev == up {
		return
	}
	if up {
		transitions.With(name, "up").Inc()
		logger.Info("link up", "device", name)
		c.bus.Emit(event.TopicLinkUp, name)
	} else {
		transitions.With(name, "down").Inc()
		logger.Warn("link down", "device", name)
		c.bus.Emit(event.TopicLinkDown, name)
	}
}

// Up reports a device's last known reachability.
func (c *ConnectivityMonitor) Up(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state[name]
}

// UpCount reports how many tracked devices are reachable.
func (c *ConnectivityMonitor) UpCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, up := range c.state {
		if up {
			n++
		}
	}
	return n
}

// Snapshot is the metric view the policy engine evaluates conditions
// against. Keys are dotted metric names, values are numeric.
type Snapshot map[string]float64

// Provider produces metric snapshots on demand.
type Provider interface {
	Snapshot() Snapshot
}

// Context aggregates the device's monitors into a metric Provider for the
// policy engine. Extra metrics can be registered by the application.
type Context struct {
	h    *heap.Heap
	conn *ConnectivityMonitor

	mu    sync.Mutex
	extra map[string]func() float64
}

var _ Provider = (*Context)(nil)

// NewContext builds a metric provider over a heap and an optional
// connectivity monitor.
func NewContext(h *heap.Heap, conn *ConnectivityMonitor) *Context {
	return &Context{h: h, conn: conn, extra: make(map[string]func() float64)}
}

// RegisterMetric adds an application metric, available to policies under the
// given dotted name.
func (c *Context) RegisterMetric(name string, fn func() float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.extra[name] = fn
}

// Snapshot implements Provider.
func (c *Context) Snapshot() Snapshot {
	st := c.h.StatsSnapshot()
	s := Snapshot{
		"heap.used":     float64(st.Used),
		"heap.capacity": float64(st.Capacity),
		"heap.used.pct": st.UsedFraction() * 100,
		"heap.objects":  float64(st.Objects),
	}
	if c.conn != nil {
		s["devices.up"] = float64(c.conn.UpCount())
	}
	c.mu.Lock()
	for name, fn := range c.extra {
		s[name] = fn()
	}
	c.mu.Unlock()
	return s
}
