package devctx

import (
	"testing"
	"time"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func fill(t testing.TB, h *heap.Heap, bytes int) heap.ObjID {
	t.Helper()
	c := heap.NewClass("Blob", heap.FieldDef{Name: "data", Kind: heap.KindBytes})
	o, err := h.New(c)
	if err != nil {
		t.Fatal(err)
	}
	o.MustSet("data", heap.Bytes(make([]byte, bytes)))
	return o.ID()
}

func TestMemoryMonitorEdgeTriggering(t *testing.T) {
	h := heap.New(1000)
	bus := event.NewBus()
	mon := NewMemoryMonitor(h, bus, 0.5)

	var ups, downs []MemorySample
	bus.Subscribe(event.TopicMemoryThreshold, func(ev event.Event) {
		ups = append(ups, ev.Payload.(MemorySample))
	})
	bus.Subscribe(event.TopicMemoryRelief, func(ev event.Event) {
		downs = append(downs, ev.Payload.(MemorySample))
	})

	// Below threshold: no event.
	if _, fired := mon.Check(); fired {
		t.Fatal("fired below threshold")
	}
	// Cross the threshold: one rising-edge event, then silence while high.
	id := fill(t, h, 600)
	if _, fired := mon.Check(); !fired {
		t.Fatal("did not fire on rising edge")
	}
	if _, fired := mon.Check(); fired {
		t.Fatal("re-fired while above threshold (not edge-triggered)")
	}
	if len(ups) != 1 || ups[0].Fraction < 0.5 {
		t.Fatalf("threshold events: %+v", ups)
	}
	// Fall back below: one relief event.
	if err := h.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, fired := mon.Check(); !fired {
		t.Fatal("did not fire on falling edge")
	}
	if len(downs) != 1 {
		t.Fatalf("relief events: %d", len(downs))
	}
}

func TestMemoryMonitorDefaults(t *testing.T) {
	h := heap.New(0)
	mon := NewMemoryMonitor(h, event.NewBus(), -3)
	if mon.Threshold() != 0.8 {
		t.Fatalf("default threshold = %v", mon.Threshold())
	}
	// Unlimited heaps never fire.
	fill(t, h, 1<<20)
	if _, fired := mon.Check(); fired {
		t.Fatal("unlimited heap fired")
	}
	s := mon.Sample()
	if s.Objects != 1 || s.Capacity != 0 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestMemoryMonitorPeriodic(t *testing.T) {
	h := heap.New(100)
	bus := event.NewBus()
	fired := make(chan struct{}, 1)
	bus.Subscribe(event.TopicMemoryThreshold, func(event.Event) {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	mon := NewMemoryMonitor(h, bus, 0.5)
	mon.Start(time.Millisecond)
	mon.Start(time.Millisecond) // double-start is a no-op
	defer mon.Stop()

	fill(t, h, 40) // object overhead pushes this over 50%
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("periodic monitor never fired")
	}
	mon.Stop()
	mon.Stop() // double-stop is a no-op
}

func TestConnectivityMonitor(t *testing.T) {
	bus := event.NewBus()
	reg := store.NewRegistry(store.SelectMostFree)
	_ = reg.Add("pda", store.NewMem(0))
	conn := NewConnectivityMonitor(bus, reg)

	var ups, downs []string
	bus.Subscribe(event.TopicLinkUp, func(ev event.Event) { ups = append(ups, ev.Payload.(string)) })
	bus.Subscribe(event.TopicLinkDown, func(ev event.Event) { downs = append(downs, ev.Payload.(string)) })

	conn.Set("pda", true)
	conn.Set("pda", true) // no change: no event
	conn.Set("pda", false)
	if len(ups) != 1 || len(downs) != 1 {
		t.Fatalf("events: ups=%v downs=%v", ups, downs)
	}
	if conn.Up("pda") {
		t.Fatal("Up after down")
	}
	if conn.UpCount() != 0 {
		t.Fatalf("UpCount = %d", conn.UpCount())
	}
	// Registry mirrored the state.
	if _, err := reg.Lookup("pda"); err == nil {
		t.Fatal("registry still reachable after link down")
	}
	conn.Set("pda", true)
	if _, err := reg.Lookup("pda"); err != nil {
		t.Fatalf("registry unreachable after link up: %v", err)
	}
	if conn.UpCount() != 1 {
		t.Fatalf("UpCount = %d", conn.UpCount())
	}
}

func TestContextSnapshot(t *testing.T) {
	h := heap.New(1000)
	fill(t, h, 100)
	bus := event.NewBus()
	reg := store.NewRegistry(store.SelectMostFree)
	_ = reg.Add("pda", store.NewMem(0))
	conn := NewConnectivityMonitor(bus, reg)
	conn.Set("pda", true)

	ctx := NewContext(h, conn)
	ctx.RegisterMetric("app.photos", func() float64 { return 12 })

	s := ctx.Snapshot()
	if s["heap.capacity"] != 1000 {
		t.Errorf("heap.capacity = %v", s["heap.capacity"])
	}
	if s["heap.used"] <= 0 || s["heap.used.pct"] <= 0 {
		t.Errorf("heap.used = %v, pct = %v", s["heap.used"], s["heap.used.pct"])
	}
	if s["heap.objects"] != 1 {
		t.Errorf("heap.objects = %v", s["heap.objects"])
	}
	if s["devices.up"] != 1 {
		t.Errorf("devices.up = %v", s["devices.up"])
	}
	if s["app.photos"] != 12 {
		t.Errorf("app.photos = %v", s["app.photos"])
	}
	// Without a connectivity monitor the metric is simply absent.
	bare := NewContext(h, nil)
	if _, ok := bare.Snapshot()["devices.up"]; ok {
		t.Error("devices.up present without monitor")
	}
}
