package devctx

import "objectswap/internal/obs"

// Instrument registers the memory monitor's gauges and edge counters in r:
// the live occupancy fraction, the configured threshold, whether occupancy is
// currently above it, and how many times each edge has fired.
func (m *MemoryMonitor) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("objectswap_devctx_memory_fraction",
		"Heap occupancy fraction (used/capacity, 0 when unlimited).",
		func() float64 { return m.Sample().Fraction })
	r.GaugeFunc("objectswap_devctx_memory_threshold",
		"Configured occupancy fraction at which memory.threshold fires.",
		func() float64 { return m.threshold })
	r.GaugeFunc("objectswap_devctx_memory_above_threshold",
		"1 while occupancy is at or above the threshold.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.above {
				return 1
			}
			return 0
		})
	m.mu.Lock()
	m.edges = r.CounterVec("objectswap_devctx_memory_edges_total",
		"Threshold crossings by direction (threshold = rising, relief = falling).",
		"edge")
	m.mu.Unlock()
}

// Instrument registers the connectivity monitor's gauges and transition
// counters in r: the reachable-device count, per-device link state, and link
// flaps by direction.
func (c *ConnectivityMonitor) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("objectswap_devctx_devices_up",
		"Reachable nearby devices.",
		func() float64 { return float64(c.UpCount()) })
	c.mu.Lock()
	c.linkGauge = r.GaugeVec("objectswap_devctx_link_up",
		"Per-device link state (1 = reachable).", "device")
	c.transitions = r.CounterVec("objectswap_devctx_link_transitions_total",
		"Link state changes by device and direction.", "device", "direction")
	c.mu.Unlock()
}
