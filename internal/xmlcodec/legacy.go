package xmlcodec

import (
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"strconv"

	"objectswap/internal/heap"
)

// This file keeps the original reflection-based wire path. It exists for two
// reasons: EncodeIndent renders the human-readable pretty-printed form
// (debugging, documentation, and the historical on-device format that the
// streaming decoder must keep accepting), and decodeLegacy anchors the
// compatibility tests and benchmarks that prove the streaming codec
// round-trips with it. Nothing on the swap hot path uses reflection anymore.

type xmlDoc struct {
	XMLName xml.Name `xml:"swapcluster"`
	ID      string   `xml:"id,attr"`
	Version int      `xml:"version,attr"`
	Objects []xmlObj `xml:"object"`
}

type xmlObj struct {
	ID     uint64     `xml:"id,attr"`
	Class  string     `xml:"class,attr"`
	Fields []xmlField `xml:"field"`
}

type xmlField struct {
	Name   string    `xml:"name,attr"`
	Kind   string    `xml:"kind,attr"`
	Target string    `xml:"target,attr,omitempty"`
	Slot   string    `xml:"slot,attr,omitempty"`
	Class  string    `xml:"class,attr,omitempty"`
	Body   string    `xml:",chardata"`
	Items  []xmlItem `xml:"item"`
}

type xmlItem struct {
	Kind   string    `xml:"kind,attr"`
	Target string    `xml:"target,attr,omitempty"`
	Slot   string    `xml:"slot,attr,omitempty"`
	Class  string    `xml:"class,attr,omitempty"`
	Body   string    `xml:",chardata"`
	Items  []xmlItem `xml:"item"`
}

// kindTag returns the wire tag for an encoded value, distinguishing the three
// reference flavors.
func kindTag(v Value) string {
	if v.Kind == heap.KindRef {
		switch v.RefClass {
		case RefSlot:
			return "xref"
		case RefRemote:
			return "rref"
		default:
			return "ref"
		}
	}
	return v.Kind.String()
}

func valueToWire(v Value) (kind, target, slot, class, body string, items []xmlItem, err error) {
	kind = kindTag(v)
	if v.Kind == heap.KindRef && v.RefClass == RefRemote {
		class = v.Class
	}
	switch v.Kind {
	case heap.KindNil:
	case heap.KindInt:
		body = strconv.FormatInt(v.I, 10)
	case heap.KindFloat:
		body = strconv.FormatFloat(v.F, 'g', -1, 64)
	case heap.KindBool:
		body = strconv.FormatBool(v.B)
	case heap.KindString:
		body = v.S
	case heap.KindBytes:
		body = base64.StdEncoding.EncodeToString(v.Data)
	case heap.KindRef:
		switch v.RefClass {
		case RefSlot:
			slot = strconv.Itoa(v.Slot)
		default:
			target = strconv.FormatUint(uint64(v.Target), 10)
		}
	case heap.KindList:
		for _, e := range v.List {
			k, tg, sl, cl, b, sub, werr := valueToWire(e)
			if werr != nil {
				return "", "", "", "", "", nil, werr
			}
			items = append(items, xmlItem{Kind: k, Target: tg, Slot: sl, Class: cl, Body: b, Items: sub})
		}
	default:
		err = fmt.Errorf("xmlcodec: unencodable kind %s", v.Kind)
	}
	return kind, target, slot, class, body, items, err
}

func valueFromWire(kind, target, slot, class, body string, items []xmlItem) (Value, error) {
	sub := make([]Value, 0, len(items))
	for _, it := range items {
		ev, err := valueFromWire(it.Kind, it.Target, it.Slot, it.Class, it.Body, it.Items)
		if err != nil {
			return Value{}, err
		}
		sub = append(sub, ev)
	}
	if len(items) == 0 {
		sub = nil
	}
	return wireValue(kind, target, slot, class, body, sub)
}

// trimWS strips the whitespace encoding/xml accumulates around chardata when
// documents are pretty-printed.
func trimWS(s string) string {
	start, end := 0, len(s)
	for start < end && isSpace(s[start]) {
		start++
	}
	for end > start && isSpace(s[end-1]) {
		end--
	}
	return s[start:end]
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// EncodeIndent renders the document in the historical pretty-printed form
// (two-space indentation, reflection-marshaled). It is byte-for-byte what the
// original encoder shipped; use it for debugging and golden files.
//
// Deprecated: shipments negotiate their format through the wire package
// (wire.Encode); the indented rendering is never what a donor stores.
func (d *Doc) EncodeIndent() ([]byte, error) {
	wire := xmlDoc{ID: d.ClusterID, Version: d.Version}
	for _, eo := range d.Objects {
		xo := xmlObj{ID: uint64(eo.ID), Class: eo.Class}
		for _, f := range eo.Fields {
			kind, target, slot, class, body, items, err := valueToWire(f.Value)
			if err != nil {
				return nil, err
			}
			xo.Fields = append(xo.Fields, xmlField{
				Name: f.Name, Kind: kind, Target: target, Slot: slot, Class: class,
				Body: body, Items: items,
			})
		}
		wire.Objects = append(wire.Objects, xo)
	}
	out, err := xml.MarshalIndent(&wire, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlcodec: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// decodeLegacy parses XML text through the original reflection path
// (xml.Unmarshal into wire structs). Retained as the compatibility oracle
// for tests and benchmarks against DecodeFrom.
func decodeLegacy(data []byte) (*Doc, error) {
	var wire xmlDoc
	if err := xml.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if wire.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, wire.Version)
	}
	doc := &Doc{ClusterID: wire.ID, Version: wire.Version}
	for _, xo := range wire.Objects {
		eo := Object{ID: heap.ObjID(xo.ID), Class: xo.Class}
		if eo.ID == heap.NilID {
			return nil, fmt.Errorf("%w: object with nil id", ErrBadDocument)
		}
		if eo.Class == "" {
			return nil, fmt.Errorf("%w: object @%d without class", ErrBadDocument, eo.ID)
		}
		for _, xf := range xo.Fields {
			ev, err := valueFromWire(xf.Kind, xf.Target, xf.Slot, xf.Class, xf.Body, xf.Items)
			if err != nil {
				return nil, fmt.Errorf("object @%d field %s: %w", eo.ID, xf.Name, err)
			}
			eo.Fields = append(eo.Fields, Field{Name: xf.Name, Value: ev})
		}
		doc.Objects = append(doc.Objects, eo)
	}
	return doc, nil
}
