// Package xmlcodec converts managed object graphs to and from the textual XML
// wrappers that Object-Swapping ships to nearby devices.
//
// The paper's pivotal portability claim rests on this layer: a device that
// receives swapped objects needs no VM, no middleware and no application
// classes — "they simply must be able to store and provide XML text". The
// codec therefore produces self-contained documents: every object is wrapped
// with its class name and per-field kind tags, and references are classified
// so that a later swap-in can re-link the graph:
//
//   - internal references ("ref") target another object inside the same
//     document (intra-swap-cluster edges survive verbatim);
//   - slot references ("xref") index into the swapped cluster's
//     replacement-object, which retains the cluster's outbound
//     swap-cluster-proxies while the cluster is away;
//   - remote references ("rref") name an object resident elsewhere — used by
//     incremental replication to ship clusters whose edges leave the shipment.
//
// The codec is policy-free: callers supply callbacks that classify outgoing
// references during encoding and resolve non-internal references during
// installation.
package xmlcodec

import (
	"encoding/base64"
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"

	"objectswap/internal/heap"
)

// Version is the wrapper format version stamped on every document.
const Version = 1

// RefClass distinguishes the three reference flavors a document can carry.
type RefClass uint8

const (
	// RefInternal targets another object within the same document.
	RefInternal RefClass = iota + 1
	// RefSlot indexes into the swapped cluster's replacement-object.
	RefSlot
	// RefRemote names an object resident on another node (replication).
	RefRemote
)

// Errors reported by the codec.
var (
	ErrBadDocument = errors.New("xmlcodec: malformed document")
	ErrVersion     = errors.New("xmlcodec: unsupported wrapper version")
)

// Value is the encoded form of one heap.Value.
type Value struct {
	Kind heap.Kind

	// Scalar payloads (valid according to Kind).
	I    int64
	F    float64
	B    bool
	S    string
	Data []byte

	// Reference payload (Kind == KindRef).
	RefClass RefClass
	Target   heap.ObjID // RefInternal / RefRemote
	Slot     int        // RefSlot
	// Class optionally names the target's class on remote references, so a
	// receiver can synthesize an object-fault proxy without contacting the
	// object's home node.
	Class string

	// List payload (Kind == KindList).
	List []Value
}

// Field is one named, encoded field of an object.
type Field struct {
	Name  string
	Value Value
}

// Object is the encoded form of one managed object.
type Object struct {
	ID     heap.ObjID
	Class  string
	Fields []Field
}

// Doc is a self-contained shipment of wrapped objects — one swap-cluster or
// one replication cluster.
type Doc struct {
	// ClusterID is the shipment key (the "unique ID (e.g., a number, a file
	// name)" the paper requires nearby devices to associate with stored text).
	ClusterID string
	Version   int
	Objects   []Object
}

// RefEncoder classifies a reference encountered while encoding. It returns
// the encoded reference value (one of RefInternal/RefSlot/RefRemote forms).
type RefEncoder func(id heap.ObjID) (Value, error)

// RefDecoder resolves a non-internal encoded reference to a live heap value
// during installation.
type RefDecoder func(v Value) (heap.Value, error)

// InternalRef builds an internal reference value.
func InternalRef(id heap.ObjID) Value {
	return Value{Kind: heap.KindRef, RefClass: RefInternal, Target: id}
}

// SlotRef builds a replacement-object slot reference value.
func SlotRef(slot int) Value {
	return Value{Kind: heap.KindRef, RefClass: RefSlot, Slot: slot}
}

// RemoteRef builds a remote reference value.
func RemoteRef(id heap.ObjID) Value {
	return Value{Kind: heap.KindRef, RefClass: RefRemote, Target: id}
}

// RemoteRefOf builds a remote reference value carrying the target's class.
func RemoteRefOf(id heap.ObjID, class string) Value {
	return Value{Kind: heap.KindRef, RefClass: RefRemote, Target: id, Class: class}
}

// FromHeapValue encodes v, classifying contained references via encodeRef.
func FromHeapValue(v heap.Value, encodeRef RefEncoder) (Value, error) {
	switch v.Kind() {
	case heap.KindNil:
		return Value{Kind: heap.KindNil}, nil
	case heap.KindInt:
		i, _ := v.Int()
		return Value{Kind: heap.KindInt, I: i}, nil
	case heap.KindFloat:
		f, _ := v.Float()
		return Value{Kind: heap.KindFloat, F: f}, nil
	case heap.KindBool:
		b, _ := v.Bool()
		return Value{Kind: heap.KindBool, B: b}, nil
	case heap.KindString:
		s, _ := v.Str()
		return Value{Kind: heap.KindString, S: s}, nil
	case heap.KindBytes:
		data, _ := v.Bytes()
		return Value{Kind: heap.KindBytes, Data: data}, nil
	case heap.KindRef:
		id, _ := v.Ref()
		if encodeRef == nil {
			return Value{}, errors.New("xmlcodec: reference without RefEncoder")
		}
		ev, err := encodeRef(id)
		if err != nil {
			return Value{}, err
		}
		if ev.Kind != heap.KindRef && ev.Kind != heap.KindNil {
			return Value{}, fmt.Errorf("xmlcodec: RefEncoder produced %s for @%d", ev.Kind, id)
		}
		return ev, nil
	case heap.KindList:
		elems, _ := v.List()
		out := make([]Value, len(elems))
		for i, e := range elems {
			ev, err := FromHeapValue(e, encodeRef)
			if err != nil {
				return Value{}, err
			}
			out[i] = ev
		}
		return Value{Kind: heap.KindList, List: out}, nil
	default:
		return Value{}, fmt.Errorf("xmlcodec: cannot encode kind %s", v.Kind())
	}
}

// ToHeapValue decodes v. Internal references become plain refs to their
// target id; slot and remote references are resolved through decodeRef.
func (v Value) ToHeapValue(decodeRef RefDecoder) (heap.Value, error) {
	switch v.Kind {
	case heap.KindNil:
		return heap.Nil(), nil
	case heap.KindInt:
		return heap.Int(v.I), nil
	case heap.KindFloat:
		return heap.Float(v.F), nil
	case heap.KindBool:
		return heap.Bool(v.B), nil
	case heap.KindString:
		return heap.Str(v.S), nil
	case heap.KindBytes:
		return heap.Bytes(v.Data), nil
	case heap.KindRef:
		if v.RefClass == RefInternal {
			return heap.Ref(v.Target), nil
		}
		if decodeRef == nil {
			return heap.Nil(), errors.New("xmlcodec: non-internal reference without RefDecoder")
		}
		return decodeRef(v)
	case heap.KindList:
		out := make([]heap.Value, len(v.List))
		for i, e := range v.List {
			hv, err := e.ToHeapValue(decodeRef)
			if err != nil {
				return heap.Nil(), err
			}
			out[i] = hv
		}
		return heap.List(out...), nil
	default:
		return heap.Nil(), fmt.Errorf("xmlcodec: cannot decode kind %s", v.Kind)
	}
}

// EncodeObject wraps a single managed object.
func EncodeObject(o *heap.Object, encodeRef RefEncoder) (Object, error) {
	out := Object{
		ID:     o.ID(),
		Class:  o.Class().Name,
		Fields: make([]Field, 0, o.NumFields()),
	}
	for i := 0; i < o.NumFields(); i++ {
		def := o.Class().Field(i)
		ev, err := FromHeapValue(o.Field(i), encodeRef)
		if err != nil {
			return Object{}, fmt.Errorf("encode %s.%s: %w", o.Class().Name, def.Name, err)
		}
		out.Fields = append(out.Fields, Field{Name: def.Name, Value: ev})
	}
	return out, nil
}

// EncodeObjects wraps a set of objects into a document keyed by clusterID.
func EncodeObjects(clusterID string, objs []*heap.Object, encodeRef RefEncoder) (*Doc, error) {
	doc := &Doc{ClusterID: clusterID, Version: Version, Objects: make([]Object, 0, len(objs))}
	for _, o := range objs {
		eo, err := EncodeObject(o, encodeRef)
		if err != nil {
			return nil, err
		}
		doc.Objects = append(doc.Objects, eo)
	}
	return doc, nil
}

// Install materializes the document's objects into h under their original
// IDs and re-links all fields. Internal references must target members of the
// document; others resolve through decodeRef. On any error the heap is left
// with whatever was installed so far — callers that need atomicity should
// install into a scratch region or collect afterwards.
func (d *Doc) Install(h *heap.Heap, reg *heap.Registry, decodeRef RefDecoder) ([]*heap.Object, error) {
	if d.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, d.Version)
	}
	members := make(map[heap.ObjID]bool, len(d.Objects))
	for _, eo := range d.Objects {
		members[eo.ID] = true
	}

	// Pass 1: allocate every object under its original identity.
	installed := make([]*heap.Object, 0, len(d.Objects))
	for _, eo := range d.Objects {
		cls, err := reg.Lookup(eo.Class)
		if err != nil {
			return installed, fmt.Errorf("install @%d: %w", eo.ID, err)
		}
		o, err := h.NewAt(eo.ID, cls)
		if err != nil {
			return installed, fmt.Errorf("install @%d: %w", eo.ID, err)
		}
		installed = append(installed, o)
	}

	// Pass 2: decode and assign fields; validate internal edges.
	checkInternal := func(v Value) error {
		if v.Kind == heap.KindRef && v.RefClass == RefInternal &&
			v.Target != heap.NilID && !members[v.Target] {
			return fmt.Errorf("%w: internal ref to non-member @%d", ErrBadDocument, v.Target)
		}
		return nil
	}
	var walk func(v Value) error
	walk = func(v Value) error {
		if err := checkInternal(v); err != nil {
			return err
		}
		for _, e := range v.List {
			if err := walk(e); err != nil {
				return err
			}
		}
		return nil
	}
	for i, eo := range d.Objects {
		o := installed[i]
		for _, f := range eo.Fields {
			if err := walk(f.Value); err != nil {
				return installed, err
			}
			hv, err := f.Value.ToHeapValue(decodeRef)
			if err != nil {
				return installed, fmt.Errorf("install @%d field %s: %w", eo.ID, f.Name, err)
			}
			if err := o.SetFieldByName(f.Name, hv); err != nil {
				return installed, fmt.Errorf("install @%d field %s: %w", eo.ID, f.Name, err)
			}
		}
	}
	return installed, nil
}

// ---- XML wire form ----------------------------------------------------

type xmlDoc struct {
	XMLName xml.Name `xml:"swapcluster"`
	ID      string   `xml:"id,attr"`
	Version int      `xml:"version,attr"`
	Objects []xmlObj `xml:"object"`
}

type xmlObj struct {
	ID     uint64     `xml:"id,attr"`
	Class  string     `xml:"class,attr"`
	Fields []xmlField `xml:"field"`
}

type xmlField struct {
	Name   string    `xml:"name,attr"`
	Kind   string    `xml:"kind,attr"`
	Target string    `xml:"target,attr,omitempty"`
	Slot   string    `xml:"slot,attr,omitempty"`
	Class  string    `xml:"class,attr,omitempty"`
	Body   string    `xml:",chardata"`
	Items  []xmlItem `xml:"item"`
}

type xmlItem struct {
	Kind   string    `xml:"kind,attr"`
	Target string    `xml:"target,attr,omitempty"`
	Slot   string    `xml:"slot,attr,omitempty"`
	Class  string    `xml:"class,attr,omitempty"`
	Body   string    `xml:",chardata"`
	Items  []xmlItem `xml:"item"`
}

// kindTag returns the wire tag for an encoded value, distinguishing the three
// reference flavors.
func kindTag(v Value) string {
	if v.Kind == heap.KindRef {
		switch v.RefClass {
		case RefSlot:
			return "xref"
		case RefRemote:
			return "rref"
		default:
			return "ref"
		}
	}
	return v.Kind.String()
}

func valueToWire(v Value) (kind, target, slot, class, body string, items []xmlItem, err error) {
	kind = kindTag(v)
	if v.Kind == heap.KindRef && v.RefClass == RefRemote {
		class = v.Class
	}
	switch v.Kind {
	case heap.KindNil:
	case heap.KindInt:
		body = strconv.FormatInt(v.I, 10)
	case heap.KindFloat:
		body = strconv.FormatFloat(v.F, 'g', -1, 64)
	case heap.KindBool:
		body = strconv.FormatBool(v.B)
	case heap.KindString:
		body = v.S
	case heap.KindBytes:
		body = base64.StdEncoding.EncodeToString(v.Data)
	case heap.KindRef:
		switch v.RefClass {
		case RefSlot:
			slot = strconv.Itoa(v.Slot)
		default:
			target = strconv.FormatUint(uint64(v.Target), 10)
		}
	case heap.KindList:
		for _, e := range v.List {
			k, tg, sl, cl, b, sub, werr := valueToWire(e)
			if werr != nil {
				return "", "", "", "", "", nil, werr
			}
			items = append(items, xmlItem{Kind: k, Target: tg, Slot: sl, Class: cl, Body: b, Items: sub})
		}
	default:
		err = fmt.Errorf("xmlcodec: unencodable kind %s", v.Kind)
	}
	return kind, target, slot, class, body, items, err
}

func valueFromWire(kind, target, slot, class, body string, items []xmlItem) (Value, error) {
	switch kind {
	case "nil":
		return Value{Kind: heap.KindNil}, nil
	case "int":
		i, err := strconv.ParseInt(trimWS(body), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad int %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindInt, I: i}, nil
	case "float":
		f, err := strconv.ParseFloat(trimWS(body), 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad float %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindFloat, F: f}, nil
	case "bool":
		b, err := strconv.ParseBool(trimWS(body))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bool %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindBool, B: b}, nil
	case "string":
		return Value{Kind: heap.KindString, S: body}, nil
	case "bytes":
		data, err := base64.StdEncoding.DecodeString(trimWS(body))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad base64", ErrBadDocument)
		}
		return Value{Kind: heap.KindBytes, Data: data}, nil
	case "ref", "rref":
		t, err := strconv.ParseUint(trimWS(target), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad target %q", ErrBadDocument, target)
		}
		rc := RefInternal
		if kind == "rref" {
			rc = RefRemote
		}
		return Value{Kind: heap.KindRef, RefClass: rc, Target: heap.ObjID(t), Class: class}, nil
	case "xref":
		s, err := strconv.Atoi(trimWS(slot))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad slot %q", ErrBadDocument, slot)
		}
		return Value{Kind: heap.KindRef, RefClass: RefSlot, Slot: s}, nil
	case "list":
		out := Value{Kind: heap.KindList}
		for _, it := range items {
			ev, err := valueFromWire(it.Kind, it.Target, it.Slot, it.Class, it.Body, it.Items)
			if err != nil {
				return Value{}, err
			}
			out.List = append(out.List, ev)
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %q", ErrBadDocument, kind)
	}
}

// trimWS strips the whitespace encoding/xml accumulates around chardata when
// documents are pretty-printed.
func trimWS(s string) string {
	start, end := 0, len(s)
	for start < end && isSpace(s[start]) {
		start++
	}
	for end > start && isSpace(s[end-1]) {
		end--
	}
	return s[start:end]
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// Encode renders the document as XML text.
func (d *Doc) Encode() ([]byte, error) {
	wire := xmlDoc{ID: d.ClusterID, Version: d.Version}
	for _, eo := range d.Objects {
		xo := xmlObj{ID: uint64(eo.ID), Class: eo.Class}
		for _, f := range eo.Fields {
			kind, target, slot, class, body, items, err := valueToWire(f.Value)
			if err != nil {
				return nil, err
			}
			xo.Fields = append(xo.Fields, xmlField{
				Name: f.Name, Kind: kind, Target: target, Slot: slot, Class: class,
				Body: body, Items: items,
			})
		}
		wire.Objects = append(wire.Objects, xo)
	}
	out, err := xml.MarshalIndent(&wire, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlcodec: marshal: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Decode parses XML text produced by Encode.
func Decode(data []byte) (*Doc, error) {
	var wire xmlDoc
	if err := xml.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
	}
	if wire.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, wire.Version)
	}
	doc := &Doc{ClusterID: wire.ID, Version: wire.Version}
	for _, xo := range wire.Objects {
		eo := Object{ID: heap.ObjID(xo.ID), Class: xo.Class}
		if eo.ID == heap.NilID {
			return nil, fmt.Errorf("%w: object with nil id", ErrBadDocument)
		}
		if eo.Class == "" {
			return nil, fmt.Errorf("%w: object @%d without class", ErrBadDocument, eo.ID)
		}
		for _, xf := range xo.Fields {
			ev, err := valueFromWire(xf.Kind, xf.Target, xf.Slot, xf.Class, xf.Body, xf.Items)
			if err != nil {
				return nil, fmt.Errorf("object @%d field %s: %w", eo.ID, xf.Name, err)
			}
			eo.Fields = append(eo.Fields, Field{Name: xf.Name, Value: ev})
		}
		doc.Objects = append(doc.Objects, eo)
	}
	return doc, nil
}
