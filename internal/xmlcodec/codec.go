// Package xmlcodec converts managed object graphs to and from the textual XML
// wrappers that Object-Swapping ships to nearby devices.
//
// The paper's pivotal portability claim rests on this layer: a device that
// receives swapped objects needs no VM, no middleware and no application
// classes — "they simply must be able to store and provide XML text". The
// codec therefore produces self-contained documents: every object is wrapped
// with its class name and per-field kind tags, and references are classified
// so that a later swap-in can re-link the graph:
//
//   - internal references ("ref") target another object inside the same
//     document (intra-swap-cluster edges survive verbatim);
//   - slot references ("xref") index into the swapped cluster's
//     replacement-object, which retains the cluster's outbound
//     swap-cluster-proxies while the cluster is away;
//   - remote references ("rref") name an object resident elsewhere — used by
//     incremental replication to ship clusters whose edges leave the shipment.
//
// The codec is policy-free: callers supply callbacks that classify outgoing
// references during encoding and resolve non-internal references during
// installation.
package xmlcodec

import (
	"errors"
	"fmt"

	"objectswap/internal/heap"
)

// Version is the wrapper format version stamped on every document.
const Version = 1

// RefClass distinguishes the three reference flavors a document can carry.
type RefClass uint8

const (
	// RefInternal targets another object within the same document.
	RefInternal RefClass = iota + 1
	// RefSlot indexes into the swapped cluster's replacement-object.
	RefSlot
	// RefRemote names an object resident on another node (replication).
	RefRemote
)

// Errors reported by the codec.
var (
	ErrBadDocument = errors.New("xmlcodec: malformed document")
	ErrVersion     = errors.New("xmlcodec: unsupported wrapper version")
)

// Value is the encoded form of one heap.Value.
type Value struct {
	Kind heap.Kind

	// Scalar payloads (valid according to Kind).
	I    int64
	F    float64
	B    bool
	S    string
	Data []byte

	// Reference payload (Kind == KindRef).
	RefClass RefClass
	Target   heap.ObjID // RefInternal / RefRemote
	Slot     int        // RefSlot
	// Class optionally names the target's class on remote references, so a
	// receiver can synthesize an object-fault proxy without contacting the
	// object's home node.
	Class string

	// List payload (Kind == KindList).
	List []Value
}

// Field is one named, encoded field of an object.
type Field struct {
	Name  string
	Value Value
}

// Object is the encoded form of one managed object.
type Object struct {
	ID     heap.ObjID
	Class  string
	Fields []Field
}

// Doc is a self-contained shipment of wrapped objects — one swap-cluster or
// one replication cluster.
type Doc struct {
	// ClusterID is the shipment key (the "unique ID (e.g., a number, a file
	// name)" the paper requires nearby devices to associate with stored text).
	ClusterID string
	Version   int
	Objects   []Object
}

// RefEncoder classifies a reference encountered while encoding. It returns
// the encoded reference value (one of RefInternal/RefSlot/RefRemote forms).
type RefEncoder func(id heap.ObjID) (Value, error)

// RefDecoder resolves a non-internal encoded reference to a live heap value
// during installation.
type RefDecoder func(v Value) (heap.Value, error)

// InternalRef builds an internal reference value.
func InternalRef(id heap.ObjID) Value {
	return Value{Kind: heap.KindRef, RefClass: RefInternal, Target: id}
}

// SlotRef builds a replacement-object slot reference value.
func SlotRef(slot int) Value {
	return Value{Kind: heap.KindRef, RefClass: RefSlot, Slot: slot}
}

// RemoteRef builds a remote reference value.
func RemoteRef(id heap.ObjID) Value {
	return Value{Kind: heap.KindRef, RefClass: RefRemote, Target: id}
}

// RemoteRefOf builds a remote reference value carrying the target's class.
func RemoteRefOf(id heap.ObjID, class string) Value {
	return Value{Kind: heap.KindRef, RefClass: RefRemote, Target: id, Class: class}
}

// FromHeapValue encodes v, classifying contained references via encodeRef.
func FromHeapValue(v heap.Value, encodeRef RefEncoder) (Value, error) {
	switch v.Kind() {
	case heap.KindNil:
		return Value{Kind: heap.KindNil}, nil
	case heap.KindInt:
		i, _ := v.Int()
		return Value{Kind: heap.KindInt, I: i}, nil
	case heap.KindFloat:
		f, _ := v.Float()
		return Value{Kind: heap.KindFloat, F: f}, nil
	case heap.KindBool:
		b, _ := v.Bool()
		return Value{Kind: heap.KindBool, B: b}, nil
	case heap.KindString:
		s, _ := v.Str()
		return Value{Kind: heap.KindString, S: s}, nil
	case heap.KindBytes:
		data, _ := v.Bytes()
		return Value{Kind: heap.KindBytes, Data: data}, nil
	case heap.KindRef:
		id, _ := v.Ref()
		if encodeRef == nil {
			return Value{}, errors.New("xmlcodec: reference without RefEncoder")
		}
		ev, err := encodeRef(id)
		if err != nil {
			return Value{}, err
		}
		if ev.Kind != heap.KindRef && ev.Kind != heap.KindNil {
			return Value{}, fmt.Errorf("xmlcodec: RefEncoder produced %s for @%d", ev.Kind, id)
		}
		return ev, nil
	case heap.KindList:
		elems, _ := v.List()
		out := make([]Value, len(elems))
		for i, e := range elems {
			ev, err := FromHeapValue(e, encodeRef)
			if err != nil {
				return Value{}, err
			}
			out[i] = ev
		}
		return Value{Kind: heap.KindList, List: out}, nil
	default:
		return Value{}, fmt.Errorf("xmlcodec: cannot encode kind %s", v.Kind())
	}
}

// ToHeapValue decodes v. Internal references become plain refs to their
// target id; slot and remote references are resolved through decodeRef.
func (v Value) ToHeapValue(decodeRef RefDecoder) (heap.Value, error) {
	switch v.Kind {
	case heap.KindNil:
		return heap.Nil(), nil
	case heap.KindInt:
		return heap.Int(v.I), nil
	case heap.KindFloat:
		return heap.Float(v.F), nil
	case heap.KindBool:
		return heap.Bool(v.B), nil
	case heap.KindString:
		return heap.Str(v.S), nil
	case heap.KindBytes:
		return heap.Bytes(v.Data), nil
	case heap.KindRef:
		if v.RefClass == RefInternal {
			return heap.Ref(v.Target), nil
		}
		if decodeRef == nil {
			return heap.Nil(), errors.New("xmlcodec: non-internal reference without RefDecoder")
		}
		return decodeRef(v)
	case heap.KindList:
		out := make([]heap.Value, len(v.List))
		for i, e := range v.List {
			hv, err := e.ToHeapValue(decodeRef)
			if err != nil {
				return heap.Nil(), err
			}
			out[i] = hv
		}
		return heap.List(out...), nil
	default:
		return heap.Nil(), fmt.Errorf("xmlcodec: cannot decode kind %s", v.Kind)
	}
}

// EncodeObject wraps a single managed object.
func EncodeObject(o *heap.Object, encodeRef RefEncoder) (Object, error) {
	out := Object{
		ID:     o.ID(),
		Class:  o.Class().Name,
		Fields: make([]Field, 0, o.NumFields()),
	}
	var eerr error
	// Walk the fields through the class's behavior plane: generated ops
	// iterate their static layout, synthesized classes their declaration
	// slice — the codec no longer assumes how a class stores its fields.
	o.EachField(func(_ int, def heap.FieldDef, v heap.Value) bool {
		ev, err := FromHeapValue(v, encodeRef)
		if err != nil {
			eerr = fmt.Errorf("encode %s.%s: %w", o.Class().Name, def.Name, err)
			return false
		}
		out.Fields = append(out.Fields, Field{Name: def.Name, Value: ev})
		return true
	})
	if eerr != nil {
		return Object{}, eerr
	}
	return out, nil
}

// EncodeObjects wraps a set of objects into a document keyed by clusterID.
func EncodeObjects(clusterID string, objs []*heap.Object, encodeRef RefEncoder) (*Doc, error) {
	doc := &Doc{ClusterID: clusterID, Version: Version, Objects: make([]Object, 0, len(objs))}
	for _, o := range objs {
		eo, err := EncodeObject(o, encodeRef)
		if err != nil {
			return nil, err
		}
		doc.Objects = append(doc.Objects, eo)
	}
	return doc, nil
}

// Install materializes the document's objects into h under their original
// IDs and re-links all fields. Internal references must target members of the
// document; others resolve through decodeRef. On any error the heap is left
// with whatever was installed so far — callers that need atomicity should
// install into a scratch region or collect afterwards.
func (d *Doc) Install(h *heap.Heap, reg *heap.Registry, decodeRef RefDecoder) ([]*heap.Object, error) {
	if d.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, d.Version)
	}
	members := make(map[heap.ObjID]bool, len(d.Objects))
	for _, eo := range d.Objects {
		members[eo.ID] = true
	}

	// Pass 1: allocate every object under its original identity.
	installed := make([]*heap.Object, 0, len(d.Objects))
	for _, eo := range d.Objects {
		cls, err := reg.Lookup(eo.Class)
		if err != nil {
			return installed, fmt.Errorf("install @%d: %w", eo.ID, err)
		}
		o, err := h.NewAt(eo.ID, cls)
		if err != nil {
			return installed, fmt.Errorf("install @%d: %w", eo.ID, err)
		}
		installed = append(installed, o)
	}

	// Pass 2: decode and assign fields; validate internal edges.
	checkInternal := func(v Value) error {
		if v.Kind == heap.KindRef && v.RefClass == RefInternal &&
			v.Target != heap.NilID && !members[v.Target] {
			return fmt.Errorf("%w: internal ref to non-member @%d", ErrBadDocument, v.Target)
		}
		return nil
	}
	var walk func(v Value) error
	walk = func(v Value) error {
		if err := checkInternal(v); err != nil {
			return err
		}
		for _, e := range v.List {
			if err := walk(e); err != nil {
				return err
			}
		}
		return nil
	}
	for i, eo := range d.Objects {
		o := installed[i]
		for _, f := range eo.Fields {
			if err := walk(f.Value); err != nil {
				return installed, err
			}
			hv, err := f.Value.ToHeapValue(decodeRef)
			if err != nil {
				return installed, fmt.Errorf("install @%d field %s: %w", eo.ID, f.Name, err)
			}
			if err := o.SetFieldByName(f.Name, hv); err != nil {
				return installed, fmt.Errorf("install @%d field %s: %w", eo.ID, f.Name, err)
			}
		}
	}
	return installed, nil
}
