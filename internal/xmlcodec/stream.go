package xmlcodec

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"

	"objectswap/internal/heap"
)

// This file is the streaming wire layer: a hand-rolled compact encoder that
// writes XML text directly from a Doc (no reflection, no intermediate wire
// structs) and a token-streaming decoder built on xml.Decoder. The compact
// form is semantically identical to the pretty-printed form the original
// reflection encoder produced (same element names, attributes and Version);
// it only drops the indentation whitespace, which a 700 Kbps link otherwise
// has to carry on every shipment. The decoder accepts both forms — and, like
// the reflection decoder before it, tolerates unknown attributes and skips
// unknown elements, so lenient third-party producers interoperate.

// ---- pooled buffers ---------------------------------------------------

// Buffer is a pooled encode buffer holding one rendered document. It exists
// so the swap-out hot path can hand rendered shipments to the transport layer
// and recycle the backing memory once the device has accepted the payload.
type Buffer struct {
	buf *bytes.Buffer
}

// Bytes returns the rendered document. The slice is invalidated by Release.
func (b *Buffer) Bytes() []byte {
	if b == nil || b.buf == nil {
		return nil
	}
	return b.buf.Bytes()
}

// Len returns the rendered document size in bytes.
func (b *Buffer) Len() int {
	if b == nil || b.buf == nil {
		return 0
	}
	return b.buf.Len()
}

// Release returns the backing memory to the codec pool. The Buffer must not
// be used afterwards; Release is idempotent.
func (b *Buffer) Release() {
	if b == nil || b.buf == nil {
		return
	}
	bufPool.Put(b.buf)
	b.buf = nil
}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

var bwPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 4096) }}

// ---- streaming encoder ------------------------------------------------

// streamWriter is the common surface of bytes.Buffer and bufio.Writer the
// encoder renders into. Write errors are deferred: bytes.Buffer cannot fail
// and bufio.Writer latches the first error until Flush reports it.
type streamWriter interface {
	io.Writer
	WriteByte(byte) error
	WriteString(string) (int, error)
}

// b64Chunk is a multiple of 3, so every full chunk encodes without padding.
const b64Chunk = 510

type encoder struct {
	w       streamWriter
	scratch [32]byte
	// b64 lives here rather than on writeBase64's stack: slices of it cross
	// the streamWriter interface, so a local would escape (one heap allocation
	// per payload field); as a field it escapes once with the encoder.
	b64 [b64Chunk / 3 * 4]byte
}

// EncodeBuffer renders the document compactly into a pooled Buffer. It is
// the allocation-lean engine Encode and the wire package's XML codec build
// on; callers must Release the buffer when the bytes are no longer needed.
//
// Deprecated: shipment paths should encode through the registered codecs
// (wire.Encode with wire.FormatXML) so the format choice is explicit and
// negotiable; EncodeBuffer remains as the XML codec's implementation.
func (d *Doc) EncodeBuffer() (*Buffer, error) {
	bb := bufPool.Get().(*bytes.Buffer)
	bb.Reset()
	e := encoder{w: bb}
	if err := e.doc(d); err != nil {
		bufPool.Put(bb)
		return nil, err
	}
	return &Buffer{buf: bb}, nil
}

// EncodeTo streams the document, compactly rendered, into w.
//
// Deprecated: shipment paths should encode through the registered codecs
// (wire.Encode with wire.FormatXML); EncodeTo remains for streaming sinks
// that genuinely want raw XML (golden files, debugging, HTTP responses).
func (d *Doc) EncodeTo(w io.Writer) error {
	if bb, ok := w.(*bytes.Buffer); ok {
		e := encoder{w: bb}
		return e.doc(d)
	}
	bw := bwPool.Get().(*bufio.Writer)
	bw.Reset(w)
	e := encoder{w: bw}
	err := e.doc(d)
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	bw.Reset(nil)
	bwPool.Put(bw)
	return err
}

// Encode renders the document as compact XML text. (The pretty-printed
// historical form remains available as EncodeIndent.)
//
// Deprecated: shipment paths should encode through the registered codecs
// (wire.Encode with wire.FormatXML), which delegates here; calling Encode
// directly bypasses format negotiation and the per-format metrics.
func (d *Doc) Encode() ([]byte, error) {
	buf, err := d.EncodeBuffer()
	if err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	buf.Release()
	return out, nil
}

func (e *encoder) doc(d *Doc) error {
	e.w.WriteString(xml.Header)
	e.w.WriteString(`<swapcluster id="`)
	e.escape(d.ClusterID, true)
	e.w.WriteString(`" version="`)
	e.writeInt(int64(d.Version))
	e.w.WriteString(`">`)
	for i := range d.Objects {
		if err := e.object(&d.Objects[i]); err != nil {
			return err
		}
	}
	_, err := e.w.WriteString("</swapcluster>")
	return err
}

func (e *encoder) object(o *Object) error {
	e.w.WriteString(`<object id="`)
	e.writeUint(uint64(o.ID))
	e.w.WriteString(`" class="`)
	e.escape(o.Class, true)
	e.w.WriteString(`">`)
	for i := range o.Fields {
		f := &o.Fields[i]
		if err := e.value("field", f.Name, f.Value); err != nil {
			return err
		}
	}
	e.w.WriteString("</object>")
	return nil
}

// value renders one encoded value as a <field> or <item> element. Elements
// with no body self-close; the decoders (both of them) treat the two forms
// identically.
func (e *encoder) value(tag, name string, v Value) error {
	e.w.WriteByte('<')
	e.w.WriteString(tag)
	if tag == "field" {
		e.w.WriteString(` name="`)
		e.escape(name, true)
		e.w.WriteByte('"')
	}
	e.w.WriteString(` kind="`)
	e.w.WriteString(kindTag(v))
	e.w.WriteByte('"')

	switch v.Kind {
	case heap.KindNil:
		e.w.WriteString("/>")
	case heap.KindInt:
		e.w.WriteByte('>')
		e.writeInt(v.I)
		e.close(tag)
	case heap.KindFloat:
		e.w.WriteByte('>')
		e.w.Write(strconv.AppendFloat(e.scratch[:0], v.F, 'g', -1, 64))
		e.close(tag)
	case heap.KindBool:
		e.w.WriteByte('>')
		e.w.Write(strconv.AppendBool(e.scratch[:0], v.B))
		e.close(tag)
	case heap.KindString:
		if v.S == "" {
			e.w.WriteString("/>")
			break
		}
		e.w.WriteByte('>')
		e.escape(v.S, false)
		e.close(tag)
	case heap.KindBytes:
		if len(v.Data) == 0 {
			e.w.WriteString("/>")
			break
		}
		e.w.WriteByte('>')
		e.writeBase64(v.Data)
		e.close(tag)
	case heap.KindRef:
		switch v.RefClass {
		case RefSlot:
			e.w.WriteString(` slot="`)
			e.writeInt(int64(v.Slot))
			e.w.WriteString(`"/>`)
		case RefRemote:
			e.w.WriteString(` target="`)
			e.writeUint(uint64(v.Target))
			e.w.WriteByte('"')
			if v.Class != "" {
				e.w.WriteString(` class="`)
				e.escape(v.Class, true)
				e.w.WriteByte('"')
			}
			e.w.WriteString("/>")
		default:
			e.w.WriteString(` target="`)
			e.writeUint(uint64(v.Target))
			e.w.WriteString(`"/>`)
		}
	case heap.KindList:
		if len(v.List) == 0 {
			e.w.WriteString("/>")
			break
		}
		e.w.WriteByte('>')
		for _, item := range v.List {
			if err := e.value("item", "", item); err != nil {
				return err
			}
		}
		e.close(tag)
	default:
		return fmt.Errorf("xmlcodec: unencodable kind %s", v.Kind)
	}
	return nil
}

func (e *encoder) close(tag string) {
	e.w.WriteString("</")
	e.w.WriteString(tag)
	e.w.WriteByte('>')
}

func (e *encoder) writeInt(v int64) {
	e.w.Write(strconv.AppendInt(e.scratch[:0], v, 10))
}

func (e *encoder) writeUint(v uint64) {
	e.w.Write(strconv.AppendUint(e.scratch[:0], v, 10))
}

// writeBase64 renders data as standard base64 without allocating: fixed-size
// chunks are encoded through a stack scratch buffer.
func (e *encoder) writeBase64(data []byte) {
	for len(data) > 0 {
		n := len(data)
		if n > b64Chunk {
			n = b64Chunk
		}
		m := base64.StdEncoding.EncodedLen(n)
		base64.StdEncoding.Encode(e.b64[:m], data[:n])
		e.w.Write(e.b64[:m])
		data = data[n:]
	}
}

// escape writes s with XML escaping, matching encoding/xml's escapeText
// semantics: &, <, > and \r are always escaped; attribute text additionally
// escapes quotes, tabs and newlines; runes XML cannot carry (control
// characters, invalid UTF-8, surrogates) are replaced with U+FFFD — exactly
// what the reflection encoder produced, so either encoder yields the same
// decoded value.
func (e *encoder) escape(s string, attr bool) {
	last := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			var repl string
			switch c {
			case '&':
				repl = "&amp;"
			case '<':
				repl = "&lt;"
			case '>':
				repl = "&gt;"
			case '\r':
				repl = "&#xD;"
			case '"':
				if attr {
					repl = "&#34;"
				}
			case '\t':
				if attr {
					repl = "&#x9;"
				}
			case '\n':
				if attr {
					repl = "&#xA;"
				}
			default:
				if c < 0x20 {
					repl = "�"
				}
			}
			if repl == "" {
				i++
				continue
			}
			e.w.WriteString(s[last:i])
			e.w.WriteString(repl)
			i++
			last = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if (r == utf8.RuneError && size == 1) || !validXMLRune(r) {
			e.w.WriteString(s[last:i])
			e.w.WriteString("�")
			i += size
			last = i
			continue
		}
		i += size
	}
	e.w.WriteString(s[last:])
}

// validXMLRune reports whether XML 1.0 can carry r (the stdlib isInCharacterRange).
func validXMLRune(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}

// ---- streaming decoder ------------------------------------------------

// Decode parses XML text produced by either encoder (compact or indented).
//
// Deprecated: payloads fetched from donors should decode through wire.Decode,
// which detects the self-described format (XML included) and routes to the
// right codec; Decode remains as the XML codec's implementation.
func Decode(data []byte) (*Doc, error) {
	return DecodeFrom(bytes.NewReader(data))
}

// DecodeFrom parses one wrapper document from r, token by token, without
// reflection and without materializing intermediate wire structs. Reading
// stops at the root element's end tag; trailing bytes are not consumed.
func DecodeFrom(r io.Reader) (*Doc, error) {
	dec := xml.NewDecoder(r)

	// Locate the root element, skipping prolog, comments and directives.
	var root xml.StartElement
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	if root.Name.Local != "swapcluster" {
		return nil, fmt.Errorf("%w: root element <%s>", ErrBadDocument, root.Name.Local)
	}

	doc := &Doc{}
	for _, a := range root.Attr {
		switch a.Name.Local {
		case "id":
			doc.ClusterID = a.Value
		case "version":
			v, err := strconv.Atoi(trimWS(a.Value))
			if err != nil {
				return nil, fmt.Errorf("%w: bad version %q", ErrBadDocument, a.Value)
			}
			doc.Version = v
		}
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, doc.Version)
	}

	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "object" {
				if err := dec.Skip(); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrBadDocument, err)
				}
				continue
			}
			eo, err := decodeObject(dec, t)
			if err != nil {
				return nil, err
			}
			doc.Objects = append(doc.Objects, eo)
		case xml.EndElement:
			return doc, nil
		}
	}
}

func decodeObject(dec *xml.Decoder, start xml.StartElement) (Object, error) {
	var eo Object
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "id":
			id, err := strconv.ParseUint(trimWS(a.Value), 10, 64)
			if err != nil {
				return Object{}, fmt.Errorf("%w: bad object id %q", ErrBadDocument, a.Value)
			}
			eo.ID = heap.ObjID(id)
		case "class":
			eo.Class = a.Value
		}
	}
	if eo.ID == heap.NilID {
		return Object{}, fmt.Errorf("%w: object with nil id", ErrBadDocument)
	}
	if eo.Class == "" {
		return Object{}, fmt.Errorf("%w: object @%d without class", ErrBadDocument, eo.ID)
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return Object{}, fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "field" {
				if err := dec.Skip(); err != nil {
					return Object{}, fmt.Errorf("%w: %v", ErrBadDocument, err)
				}
				continue
			}
			name, v, err := decodeValue(dec, t)
			if err != nil {
				return Object{}, fmt.Errorf("object @%d field %s: %w", eo.ID, name, err)
			}
			eo.Fields = append(eo.Fields, Field{Name: name, Value: v})
		case xml.EndElement:
			return eo, nil
		}
	}
}

// decodeValue parses one <field> or <item> element (and its nested items)
// into an encoded Value.
func decodeValue(dec *xml.Decoder, start xml.StartElement) (string, Value, error) {
	var name, kind, target, slot, class string
	for _, a := range start.Attr {
		switch a.Name.Local {
		case "name":
			name = a.Value
		case "kind":
			kind = a.Value
		case "target":
			target = a.Value
		case "slot":
			slot = a.Value
		case "class":
			class = a.Value
		}
	}
	var body []byte
	var items []Value
	for {
		tok, err := dec.Token()
		if err != nil {
			return name, Value{}, fmt.Errorf("%w: %v", ErrBadDocument, err)
		}
		switch t := tok.(type) {
		case xml.CharData:
			body = append(body, t...)
		case xml.StartElement:
			if t.Name.Local != "item" {
				if err := dec.Skip(); err != nil {
					return name, Value{}, fmt.Errorf("%w: %v", ErrBadDocument, err)
				}
				continue
			}
			_, item, err := decodeValue(dec, t)
			if err != nil {
				return name, Value{}, err
			}
			items = append(items, item)
		case xml.EndElement:
			v, err := wireValue(kind, target, slot, class, string(body), items)
			return name, v, err
		}
	}
}

// wireValue builds an encoded Value from its wire constituents. It is the
// single source of truth for body/attribute parsing rules, shared by the
// streaming decoder and the legacy reflection path.
func wireValue(kind, target, slot, class, body string, items []Value) (Value, error) {
	switch kind {
	case "nil":
		return Value{Kind: heap.KindNil}, nil
	case "int":
		i, err := strconv.ParseInt(trimWS(body), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad int %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindInt, I: i}, nil
	case "float":
		f, err := strconv.ParseFloat(trimWS(body), 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad float %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindFloat, F: f}, nil
	case "bool":
		b, err := strconv.ParseBool(trimWS(body))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bool %q", ErrBadDocument, body)
		}
		return Value{Kind: heap.KindBool, B: b}, nil
	case "string":
		return Value{Kind: heap.KindString, S: body}, nil
	case "bytes":
		data, err := base64.StdEncoding.DecodeString(trimWS(body))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad base64", ErrBadDocument)
		}
		return Value{Kind: heap.KindBytes, Data: data}, nil
	case "ref", "rref":
		t, err := strconv.ParseUint(trimWS(target), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad target %q", ErrBadDocument, target)
		}
		rc := RefInternal
		if kind == "rref" {
			rc = RefRemote
		}
		return Value{Kind: heap.KindRef, RefClass: rc, Target: heap.ObjID(t), Class: class}, nil
	case "xref":
		s, err := strconv.Atoi(trimWS(slot))
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad slot %q", ErrBadDocument, slot)
		}
		return Value{Kind: heap.KindRef, RefClass: RefSlot, Slot: s}, nil
	case "list":
		return Value{Kind: heap.KindList, List: items}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %q", ErrBadDocument, kind)
	}
}
