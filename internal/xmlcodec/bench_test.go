package xmlcodec

import (
	"fmt"
	"io"
	"testing"

	"objectswap/internal/heap"
)

// benchDoc builds a shipment-shaped document: objs wrapped objects with the
// field mix a swap-cluster typically carries (scalars, a payload blob,
// intra-cluster refs, a slot ref and a list).
func benchDoc(objs int) *Doc {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	doc := &Doc{ClusterID: "bench-swapcluster-1-gen1", Version: Version}
	for i := 0; i < objs; i++ {
		id := heap.ObjID(i + 1)
		next := heap.ObjID(i%objs + 1)
		doc.Objects = append(doc.Objects, Object{
			ID:    id,
			Class: "Record",
			Fields: []Field{
				{Name: "title", Value: Value{Kind: heap.KindString, S: fmt.Sprintf("record #%d with \"quoted\" & <angled> text", i)}},
				{Name: "seq", Value: Value{Kind: heap.KindInt, I: int64(i) * 7919}},
				{Name: "weight", Value: Value{Kind: heap.KindFloat, F: float64(i) * 0.125}},
				{Name: "dirty", Value: Value{Kind: heap.KindBool, B: i%2 == 0}},
				{Name: "blob", Value: Value{Kind: heap.KindBytes, Data: payload}},
				{Name: "next", Value: InternalRef(next)},
				{Name: "out", Value: SlotRef(i % 4)},
				{Name: "home", Value: RemoteRefOf(heap.ObjID(100000+i), "Record")},
				{Name: "tags", Value: Value{Kind: heap.KindList, List: []Value{
					{Kind: heap.KindString, S: "hot"},
					{Kind: heap.KindInt, I: int64(i)},
					InternalRef(id),
				}}},
			},
		})
	}
	return doc
}

const benchObjects = 64

// BenchmarkEncodeStream is the tentpole number: the hand-rolled compact
// streaming encoder on the swap hot path.
func BenchmarkEncodeStream(b *testing.B) {
	doc := benchDoc(benchObjects)
	buf, err := doc.EncodeBuffer()
	if err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := doc.EncodeBuffer()
		if err != nil {
			b.Fatal(err)
		}
		buf.Release()
	}
	// After the loop: ResetTimer discards metrics reported before it.
	b.ReportMetric(float64(size), "xml-bytes")
}

// BenchmarkEncodeStreamTo measures the io.Writer path (pooled bufio.Writer),
// as used when a shipment streams straight into a transport connection.
func BenchmarkEncodeStreamTo(b *testing.B) {
	doc := benchDoc(benchObjects)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := doc.EncodeTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeReflect is the baseline this PR replaces: reflection-based
// MarshalIndent producing the pretty-printed historical form.
func BenchmarkEncodeReflect(b *testing.B) {
	doc := benchDoc(benchObjects)
	out, err := doc.EncodeIndent()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := doc.EncodeIndent(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out)), "xml-bytes")
}

// BenchmarkDecodeStream measures the token-streaming decoder on compact text.
func BenchmarkDecodeStream(b *testing.B) {
	doc := benchDoc(benchObjects)
	data, err := doc.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "xml-bytes")
}

// BenchmarkDecodeReflect is the replaced baseline: xml.Unmarshal into wire
// structs, fed the same compact text for a like-for-like comparison.
func BenchmarkDecodeReflect(b *testing.B) {
	doc := benchDoc(benchObjects)
	data, err := doc.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeLegacy(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "xml-bytes")
}
