package xmlcodec

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"objectswap/internal/heap"
)

func testClasses() (*heap.Registry, *heap.Class) {
	reg := heap.NewRegistry()
	node := heap.NewClass("Node",
		heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "tag", Kind: heap.KindInt},
		heap.FieldDef{Name: "label", Kind: heap.KindString},
		heap.FieldDef{Name: "weight", Kind: heap.KindFloat},
		heap.FieldDef{Name: "flag", Kind: heap.KindBool},
		heap.FieldDef{Name: "links", Kind: heap.KindList},
	)
	reg.MustRegister(node)
	return reg, node
}

// internalOnly encodes every reference as internal.
func internalOnly(id heap.ObjID) (Value, error) { return InternalRef(id), nil }

func TestRoundTripFullGraph(t *testing.T) {
	reg, node := testClasses()
	src := heap.New(0)
	a, _ := src.New(node)
	b, _ := src.New(node)
	a.MustSet("payload", heap.Bytes([]byte{0, 1, 2, 254, 255})).
		MustSet("next", b.RefTo()).
		MustSet("tag", heap.Int(-12345)).
		MustSet("label", heap.Str("héllo <xml> & \"quotes\"")).
		MustSet("weight", heap.Float(2.718281828)).
		MustSet("flag", heap.Bool(true)).
		MustSet("links", heap.List(b.RefTo(), heap.Int(7), heap.List(a.RefTo())))
	b.MustSet("next", a.RefTo()).MustSet("label", heap.Str("  padded  "))

	doc, err := EncodeObjects("c1", []*heap.Object{a, b}, internalOnly)
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<swapcluster") {
		t.Fatalf("unexpected wire form:\n%s", data)
	}

	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ClusterID != "c1" || len(back.Objects) != 2 {
		t.Fatalf("decoded doc = %+v", back)
	}

	dst := heap.New(0)
	installed, err := back.Install(dst, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(installed) != 2 {
		t.Fatalf("installed %d objects", len(installed))
	}
	ra, err := dst.Get(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := dst.Get(b.ID())
	for i := 0; i < node.NumFields(); i++ {
		if !ra.Field(i).Equal(a.Field(i)) {
			t.Errorf("field %s differs: %v vs %v", node.Field(i).Name, ra.Field(i), a.Field(i))
		}
	}
	lbl, _ := rb.FieldByName("label")
	if s, err := lbl.Str(); err != nil || s != "  padded  " {
		t.Errorf("padded string not preserved: %q, %v", s, err)
	}
}

func TestRoundTripSlotAndRemoteRefs(t *testing.T) {
	reg, node := testClasses()
	src := heap.New(0)
	a, _ := src.New(node)
	a.MustSet("next", heap.Ref(777)). // will encode as slot 3
						MustSet("links", heap.List(heap.Ref(888))) // will encode as remote

	enc := func(id heap.ObjID) (Value, error) {
		switch id {
		case 777:
			return SlotRef(3), nil
		case 888:
			return RemoteRef(888), nil
		default:
			return InternalRef(id), nil
		}
	}
	doc, err := EncodeObjects("c2", []*heap.Object{a}, enc)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := doc.Encode()
	if !strings.Contains(string(data), `kind="xref"`) || !strings.Contains(string(data), `kind="rref"`) {
		t.Fatalf("wire missing xref/rref:\n%s", data)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	dst := heap.New(0)
	var sawSlot, sawRemote bool
	dec := func(v Value) (heap.Value, error) {
		switch v.RefClass {
		case RefSlot:
			sawSlot = v.Slot == 3
			return heap.Nil(), nil
		case RefRemote:
			sawRemote = v.Target == 888
			return heap.Nil(), nil
		}
		return heap.Nil(), errors.New("unexpected")
	}
	if _, err := back.Install(dst, reg, dec); err != nil {
		t.Fatal(err)
	}
	if !sawSlot || !sawRemote {
		t.Fatalf("decoder callbacks: slot=%v remote=%v", sawSlot, sawRemote)
	}
}

func TestInstallRejectsNonMemberInternalRef(t *testing.T) {
	reg, node := testClasses()
	src := heap.New(0)
	a, _ := src.New(node)
	a.MustSet("next", heap.Ref(4242)) // not in the doc
	doc, err := EncodeObjects("bad", []*heap.Object{a}, internalOnly)
	if err != nil {
		t.Fatal(err)
	}
	dst := heap.New(0)
	if _, err := doc.Install(dst, reg, nil); !errors.Is(err, ErrBadDocument) {
		t.Fatalf("install: got %v, want ErrBadDocument", err)
	}
}

func TestInstallUnknownClass(t *testing.T) {
	_, node := testClasses()
	src := heap.New(0)
	a, _ := src.New(node)
	doc, _ := EncodeObjects("c", []*heap.Object{a}, internalOnly)
	empty := heap.NewRegistry()
	dst := heap.New(0)
	if _, err := doc.Install(dst, empty, nil); !errors.Is(err, heap.ErrUnknownClass) {
		t.Fatalf("install: got %v, want ErrUnknownClass", err)
	}
}

func TestInstallCollisionWithResident(t *testing.T) {
	reg, node := testClasses()
	src := heap.New(0)
	a, _ := src.New(node)
	doc, _ := EncodeObjects("c", []*heap.Object{a}, internalOnly)
	dst := heap.New(0)
	if _, err := dst.NewAt(a.ID(), node); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Install(dst, reg, nil); err == nil {
		t.Fatal("install over resident id: want error")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not xml":     "}{",
		"bad version": `<swapcluster id="x" version="99"></swapcluster>`,
		"nil obj id":  `<swapcluster id="x" version="1"><object id="0" class="Node"></object></swapcluster>`,
		"no class":    `<swapcluster id="x" version="1"><object id="1"></object></swapcluster>`,
		"bad int":     `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="tag" kind="int">zz</field></object></swapcluster>`,
		"bad kind":    `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="tag" kind="wat">1</field></object></swapcluster>`,
		"bad target":  `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="next" kind="ref" target="zz"/></object></swapcluster>`,
		"bad slot":    `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="next" kind="xref" slot="zz"/></object></swapcluster>`,
		"bad b64":     `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="payload" kind="bytes">!!</field></object></swapcluster>`,
		"bad float":   `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="weight" kind="float">zz</field></object></swapcluster>`,
		"bad bool":    `<swapcluster id="x" version="1"><object id="1" class="Node"><field name="flag" kind="bool">zz</field></object></swapcluster>`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Decode([]byte(body)); err == nil {
				t.Fatalf("Decode accepted %s", name)
			}
		})
	}
}

func TestDecodeToleratesPrettyPrintedWhitespace(t *testing.T) {
	body := `<?xml version="1.0" encoding="UTF-8"?>
<swapcluster id="c9" version="1">
  <object id="5" class="Node">
    <field name="tag" kind="int">
      42
    </field>
    <field name="links" kind="list">
      <item kind="int">1</item>
      <item kind="list">
        <item kind="ref" target="5"/>
      </item>
    </field>
  </object>
</swapcluster>`
	doc, err := Decode([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Objects[0].Fields[0].Value.I != 42 {
		t.Fatalf("whitespace-padded int mis-decoded: %+v", doc.Objects[0].Fields[0].Value)
	}
	list := doc.Objects[0].Fields[1].Value
	if len(list.List) != 2 || list.List[1].List[0].Target != 5 {
		t.Fatalf("nested list mis-decoded: %+v", list)
	}
}

func TestEncodeRefWithoutEncoder(t *testing.T) {
	if _, err := FromHeapValue(heap.Ref(1), nil); err == nil {
		t.Fatal("want error for ref without encoder")
	}
	if _, err := (Value{Kind: heap.KindRef, RefClass: RefSlot}).ToHeapValue(nil); err == nil {
		t.Fatal("want error for slot ref without decoder")
	}
}

func TestNilRefsEncodeAsNil(t *testing.T) {
	v, err := FromHeapValue(heap.Nil(), nil)
	if err != nil || v.Kind != heap.KindNil {
		t.Fatalf("nil encode = %+v, %v", v, err)
	}
	hv, err := v.ToHeapValue(nil)
	if err != nil || !hv.IsNil() {
		t.Fatalf("nil decode = %v, %v", hv, err)
	}
}

// Property: any randomly generated object graph round-trips through
// encode → XML → decode → install with identical field values and edges.
func TestPropGraphRoundTrip(t *testing.T) {
	reg, node := testClasses()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := heap.New(0)
		n := 1 + r.Intn(12)
		objs := make([]*heap.Object, n)
		for i := range objs {
			objs[i], _ = src.New(node)
		}
		for _, o := range objs {
			if r.Intn(2) == 0 {
				o.MustSet("next", objs[r.Intn(n)].RefTo())
			}
			payload := make([]byte, r.Intn(48))
			r.Read(payload)
			o.MustSet("payload", heap.Bytes(payload)).
				MustSet("tag", heap.Int(r.Int63()-r.Int63())).
				MustSet("label", heap.Str(randLabel(r))).
				MustSet("weight", heap.Float(r.NormFloat64())).
				MustSet("flag", heap.Bool(r.Intn(2) == 0))
			if r.Intn(3) == 0 {
				o.MustSet("links", heap.List(objs[r.Intn(n)].RefTo(), heap.Int(int64(r.Intn(9)))))
			}
		}
		doc, err := EncodeObjects("p", objs, internalOnly)
		if err != nil {
			return false
		}
		data, err := doc.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil {
			return false
		}
		dst := heap.New(0)
		if _, err := back.Install(dst, reg, nil); err != nil {
			return false
		}
		for _, o := range objs {
			ro, err := dst.Get(o.ID())
			if err != nil {
				return false
			}
			for i := 0; i < node.NumFields(); i++ {
				if !ro.Field(i).Equal(o.Field(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randLabel(r *rand.Rand) string {
	const alphabet = "abc <>&\"'\t xyz"
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}
