package xmlcodec

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"objectswap/internal/heap"
)

// crossDoc builds a document exercising every wire construct: all scalar
// kinds, a base64 payload, all three reference classes and nested lists.
func crossDoc() *Doc {
	return &Doc{
		ClusterID: `node-a-swapcluster-7-gen2 <&">`,
		Version:   Version,
		Objects: []Object{
			{
				ID:    3,
				Class: "Person",
				Fields: []Field{
					{Name: "name", Value: Value{Kind: heap.KindString, S: "  Ada <&> \"Lovelace\"\t\n  "}},
					{Name: "age", Value: Value{Kind: heap.KindInt, I: -36}},
					{Name: "score", Value: Value{Kind: heap.KindFloat, F: 3.14159e-7}},
					{Name: "active", Value: Value{Kind: heap.KindBool, B: true}},
					{Name: "photo", Value: Value{Kind: heap.KindBytes, Data: []byte("\x00\x01\xfe\xffbinary payload that is long enough to span lines")}},
					{Name: "empty", Value: Value{Kind: heap.KindNil}},
					{Name: "friend", Value: InternalRef(9)},
					{Name: "away", Value: SlotRef(2)},
					{Name: "far", Value: RemoteRefOf(4096, "Person")},
					{Name: "bare", Value: RemoteRef(17)},
					{Name: "tags", Value: Value{Kind: heap.KindList, List: []Value{
						{Kind: heap.KindString, S: "x"},
						InternalRef(3),
						{Kind: heap.KindList, List: []Value{{Kind: heap.KindInt, I: 0}}},
						{Kind: heap.KindList},
					}}},
				},
			},
			{
				ID:    9,
				Class: "Person",
				Fields: []Field{
					{Name: "name", Value: Value{Kind: heap.KindString, S: ""}},
					{Name: "photo", Value: Value{Kind: heap.KindBytes}},
				},
			},
		},
	}
}

// TestCrossCodecRoundTrip is the compatibility contract: documents rendered
// by the historical reflection encoder must decode identically through the
// streaming decoder, and compact streaming output must decode identically
// through the legacy reflection decoder.
func TestCrossCodecRoundTrip(t *testing.T) {
	doc := crossDoc()

	indented, err := doc.EncodeIndent()
	if err != nil {
		t.Fatalf("EncodeIndent: %v", err)
	}
	compact, err := doc.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	fromIndented, err := Decode(indented)
	if err != nil {
		t.Fatalf("streaming decode of indented form: %v", err)
	}
	fromCompact, err := decodeLegacy(compact)
	if err != nil {
		t.Fatalf("legacy decode of compact form: %v", err)
	}
	viaLegacy, err := decodeLegacy(indented)
	if err != nil {
		t.Fatalf("legacy decode of indented form: %v", err)
	}
	viaStream, err := Decode(compact)
	if err != nil {
		t.Fatalf("streaming decode of compact form: %v", err)
	}

	if !reflect.DeepEqual(fromIndented, viaLegacy) {
		t.Errorf("streaming and legacy decoders disagree on indented text:\n stream: %+v\n legacy: %+v", fromIndented, viaLegacy)
	}
	if !reflect.DeepEqual(fromCompact, viaStream) {
		t.Errorf("streaming and legacy decoders disagree on compact text:\n legacy: %+v\n stream: %+v", fromCompact, viaStream)
	}
	if !reflect.DeepEqual(viaStream, fromIndented) {
		t.Errorf("compact and indented forms decode differently:\n compact: %+v\n indented: %+v", viaStream, fromIndented)
	}
	// Decoded documents must be an encode fixpoint: re-encoding reproduces the
	// compact text byte for byte (nil vs empty slices may differ in memory, so
	// the wire form is the equality that matters).
	reEncoded, err := viaStream.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(reEncoded, compact) {
		t.Errorf("re-encoding a decoded document changed the wire text:\n got:  %s\n want: %s", reEncoded, compact)
	}
}

// TestCompactSmallerThanIndented pins the shipment-size win: the compact form
// of the same document must be strictly smaller than the pretty-printed one.
func TestCompactSmallerThanIndented(t *testing.T) {
	doc := crossDoc()
	indented, err := doc.EncodeIndent()
	if err != nil {
		t.Fatal(err)
	}
	compact, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) >= len(indented) {
		t.Fatalf("compact form (%d bytes) not smaller than indented (%d bytes)", len(compact), len(indented))
	}
	if !strings.Contains(string(compact), "<swapcluster ") {
		t.Fatalf("compact form lost the wrapper element: %q", compact)
	}
}

// onlyWriter hides bytes.Buffer's concrete type so EncodeTo exercises the
// pooled bufio path.
type onlyWriter struct{ w io.Writer }

func (o onlyWriter) Write(p []byte) (int, error) { return o.w.Write(p) }

func TestEncodeToMatchesEncode(t *testing.T) {
	doc := crossDoc()
	want, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var direct bytes.Buffer
	if err := doc.EncodeTo(&direct); err != nil {
		t.Fatalf("EncodeTo(*bytes.Buffer): %v", err)
	}
	if !bytes.Equal(direct.Bytes(), want) {
		t.Error("EncodeTo(*bytes.Buffer) differs from Encode")
	}

	var buffered bytes.Buffer
	if err := doc.EncodeTo(onlyWriter{&buffered}); err != nil {
		t.Fatalf("EncodeTo(io.Writer): %v", err)
	}
	if !bytes.Equal(buffered.Bytes(), want) {
		t.Error("EncodeTo(io.Writer) differs from Encode")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n -= len(p); f.n < 0 {
		return 0, io.ErrShortWrite
	}
	return len(p), nil
}

func TestEncodeToPropagatesWriteError(t *testing.T) {
	if err := crossDoc().EncodeTo(&failWriter{n: 16}); err == nil {
		t.Fatal("EncodeTo swallowed the sink's write error")
	}
}

func TestEncodeBufferReleaseAndReuse(t *testing.T) {
	doc := crossDoc()
	want, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		buf, err := doc.EncodeBuffer()
		if err != nil {
			t.Fatalf("EncodeBuffer: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("iteration %d: pooled buffer content differs from Encode", i)
		}
		if buf.Len() != len(want) {
			t.Fatalf("iteration %d: Len()=%d want %d", i, buf.Len(), len(want))
		}
		buf.Release()
		buf.Release() // idempotent
		if buf.Bytes() != nil || buf.Len() != 0 {
			t.Fatal("released buffer still exposes content")
		}
	}
}

// TestStreamDecoderLeniency mirrors the reflection decoder's tolerance for
// unknown elements and attributes and self-closing vs open-close forms.
func TestStreamDecoderLeniency(t *testing.T) {
	text := `<?xml version="1.0"?>
<!-- produced by a third party -->
<swapcluster id="c" version="1" vendor="acme">
  <meta generator="acme-tool"/>
  <object id="5" class="Box" extra="yes">
    <annotation>ignored</annotation>
    <field name="n" kind="int" unit="mm"> 42 </field>
    <field name="s" kind="string"></field>
    <field name="l" kind="list">
      <item kind="bool">true</item>
      <note/>
    </field>
  </object>
</swapcluster>trailing junk`
	doc, err := Decode([]byte(text))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if doc.ClusterID != "c" || len(doc.Objects) != 1 {
		t.Fatalf("unexpected doc shape: %+v", doc)
	}
	o := doc.Objects[0]
	if o.ID != 5 || o.Class != "Box" || len(o.Fields) != 3 {
		t.Fatalf("unexpected object shape: %+v", o)
	}
	if o.Fields[0].Value.I != 42 {
		t.Errorf("int field: got %d", o.Fields[0].Value.I)
	}
	if o.Fields[1].Value.Kind != heap.KindString || o.Fields[1].Value.S != "" {
		t.Errorf("empty string field: got %+v", o.Fields[1].Value)
	}
	if l := o.Fields[2].Value; l.Kind != heap.KindList || len(l.List) != 1 || !l.List[0].B {
		t.Errorf("list field: got %+v", o.Fields[2].Value)
	}
}

func TestStreamDecoderRejects(t *testing.T) {
	cases := map[string]string{
		"wrong root":    `<?xml version="1.0"?><notacluster id="c" version="1"/>`,
		"bad version":   `<swapcluster id="c" version="9"/>`,
		"junk version":  `<swapcluster id="c" version="x"/>`,
		"no version":    `<swapcluster id="c"/>`,
		"nil object id": `<swapcluster id="c" version="1"><object id="0" class="Box"/></swapcluster>`,
		"bad object id": `<swapcluster id="c" version="1"><object id="q" class="Box"/></swapcluster>`,
		"no class":      `<swapcluster id="c" version="1"><object id="3"/></swapcluster>`,
		"bad kind":      `<swapcluster id="c" version="1"><object id="3" class="Box"><field name="f" kind="wat"/></object></swapcluster>`,
		"truncated":     `<swapcluster id="c" version="1"><object id="3" class="Box">`,
		"not xml":       `swapcluster`,
	}
	for label, text := range cases {
		if _, err := Decode([]byte(text)); err == nil {
			t.Errorf("%s: decode accepted %q", label, text)
		}
	}
}

// TestEscapeParity feeds hostile strings through both encoders and checks the
// decoders agree, including encoding/xml's U+FFFD replacement of characters
// XML cannot carry.
func TestEscapeParity(t *testing.T) {
	samples := []string{
		"plain",
		`quotes " and ' mixed`,
		"angle <brackets> & ampersand",
		"tab\tnewline\ncarriage\rreturn",
		"control\x01char and del\x7f",
		"invalid utf8 \xff\xfe tail",
		"high plane \U0001F600 ok",
		"]]> cdata terminator",
		strings.Repeat("&<>\"'\r\n\t", 40),
	}
	for _, s := range samples {
		doc := &Doc{ClusterID: s, Version: Version, Objects: []Object{{
			ID: 1, Class: s + "C",
			Fields: []Field{{Name: "v", Value: Value{Kind: heap.KindString, S: s}}},
		}}}
		indented, err := doc.EncodeIndent()
		if err != nil {
			t.Fatalf("%q: EncodeIndent: %v", s, err)
		}
		compact, err := doc.Encode()
		if err != nil {
			t.Fatalf("%q: Encode: %v", s, err)
		}
		a, err := Decode(indented)
		if err != nil {
			t.Fatalf("%q: decode indented: %v", s, err)
		}
		b, err := Decode(compact)
		if err != nil {
			t.Fatalf("%q: decode compact: %v", s, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%q: encoders diverge after decode:\n indented: %+v\n compact:  %+v", s, a, b)
		}
	}
}
