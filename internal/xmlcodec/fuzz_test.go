package xmlcodec

import (
	"testing"

	"objectswap/internal/heap"
)

// FuzzDecode hardens the wrapper parser against arbitrary device responses
// (the paper's devices are untrusted storage: anything can come back).
// Run long with: go test -fuzz FuzzDecode ./internal/xmlcodec
func FuzzDecode(f *testing.F) {
	// Seeds: valid documents and near-misses.
	seeds := []string{
		`<?xml version="1.0"?><swapcluster id="c" version="1"></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="x" kind="int">7</field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="r" kind="ref" target="2"/><field name="s" kind="xref" slot="0"/><field name="t" kind="rref" target="9" class="N"/></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="l" kind="list"><item kind="int">1</item><item kind="list"><item kind="ref" target="1"/></item></field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="b" kind="bytes">aGVsbG8=</field></object></swapcluster>`,
		`<swapcluster`, `<swapcluster id="c" version="9"/>`, ``, `<a><b></a>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Any accepted document must re-encode and re-decode stably.
		out, err := doc.Encode()
		if err != nil {
			t.Fatalf("accepted document failed to encode: %v", err)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded document rejected: %v", err)
		}
		if len(again.Objects) != len(doc.Objects) || again.ClusterID != doc.ClusterID {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				len(again.Objects), again.ClusterID, len(doc.Objects), doc.ClusterID)
		}
	})
}

// FuzzCrossCodec proves decoder compatibility in both directions: any
// document either decoder accepts must decode identically through the other,
// both in the historical pretty-printed rendering and the compact streaming
// one. Run long with: go test -fuzz FuzzCrossCodec ./internal/xmlcodec
func FuzzCrossCodec(f *testing.F) {
	seeds := []string{
		`<?xml version="1.0"?><swapcluster id="c" version="1"></swapcluster>`,
		`<swapcluster id="c &quot;x&quot;" version="1"><object id="1" class="N"><field name="x" kind="int">7</field><field name="f" kind="float">-2.5e3</field><field name="g" kind="bool">true</field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="r" kind="ref" target="2"/><field name="s" kind="xref" slot="0"/><field name="t" kind="rref" target="9" class="N"/></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="l" kind="list"><item kind="string"> padded </item><item kind="list"><item kind="ref" target="1"/></item></field></object></swapcluster>`,
		`<swapcluster id="c" version="1"><object id="1" class="N"><field name="b" kind="bytes">aGVsbG8=</field><field name="n" kind="nil"/></object></swapcluster>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		streamDoc, streamErr := Decode(data)
		legacyDoc, legacyErr := decodeLegacy(data)
		// The parsers need not agree on rejections (xml.Unmarshal and
		// xml.Decoder differ on some malformed inputs); compatibility is about
		// documents, so compare via each accepted document's renderings.
		for _, doc := range []*Doc{streamDoc, legacyDoc} {
			if doc == nil {
				continue
			}
			compact, err := doc.Encode()
			if err != nil {
				t.Fatalf("accepted document failed compact encode: %v", err)
			}
			indented, err := doc.EncodeIndent()
			if err != nil {
				t.Fatalf("accepted document failed indented encode: %v", err)
			}
			a, err := Decode(compact)
			if err != nil {
				t.Fatalf("streaming decoder rejected compact rendering: %v", err)
			}
			b, err := decodeLegacy(compact)
			if err != nil {
				t.Fatalf("legacy decoder rejected compact rendering: %v", err)
			}
			c, err := Decode(indented)
			if err != nil {
				t.Fatalf("streaming decoder rejected indented rendering: %v", err)
			}
			d, err := decodeLegacy(indented)
			if err != nil {
				t.Fatalf("legacy decoder rejected indented rendering: %v", err)
			}
			// All four decodes must re-render to the same compact bytes.
			for i, got := range []*Doc{b, c, d} {
				out, err := got.Encode()
				if err != nil {
					t.Fatalf("re-encode %d: %v", i, err)
				}
				ref, err := a.Encode()
				if err != nil {
					t.Fatalf("re-encode reference: %v", err)
				}
				if string(out) != string(ref) {
					t.Fatalf("decoder disagreement (case %d):\n got:  %s\n want: %s", i, out, ref)
				}
			}
		}
		_ = streamErr
		_ = legacyErr
	})
}

// FuzzValueRoundTrip drives random scalar payloads through the full
// heap-value → wire → heap-value path.
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(int64(0), "", []byte{}, true)
	f.Add(int64(-1), "héllo <&> ]]>", []byte{0, 255, 128}, false)
	f.Add(int64(1<<62), "\t padded \n", []byte("abc"), true)
	f.Fuzz(func(t *testing.T, i int64, s string, b []byte, flag bool) {
		orig := heap.List(heap.Int(i), heap.Str(s), heap.Bytes(b), heap.Bool(flag))
		ev, err := FromHeapValue(orig, nil)
		if err != nil {
			t.Fatal(err)
		}
		kind, target, slot, class, body, items, err := valueToWire(ev)
		if err != nil {
			t.Fatal(err)
		}
		back, err := valueFromWire(kind, target, slot, class, body, items)
		if err != nil {
			t.Fatal(err)
		}
		hv, err := back.ToHeapValue(nil)
		if err != nil {
			t.Fatal(err)
		}
		// The wire form is not whitespace-safe for leading/trailing scalar
		// whitespace inside list items when pretty-printed, but valueToWire/
		// valueFromWire round the exact values here.
		if !hv.Equal(orig) {
			t.Fatalf("round trip changed value: %v -> %v", orig, hv)
		}
	})
}
