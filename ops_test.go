package objectswap

// Facade-level tests of the operator surface: /healthz tracking the circuit
// breakers, and a swap trace ID propagating from the constrained device's
// flight recorder across the HTTP store boundary into the serving side's
// access log.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/opshttp"
	"objectswap/internal/store"
)

// getHealth hits /healthz on the system's ops handler.
func getHealth(t *testing.T, sys *System) (int, opshttp.HealthResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	sys.OpsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hr opshttp.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, rec.Body.String())
	}
	return rec.Code, hr
}

func checkNamed(t *testing.T, hr opshttp.HealthResponse, name string) opshttp.CheckResult {
	t.Helper()
	for _, c := range hr.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no %q check in %+v", name, hr.Checks)
	return opshttp.CheckResult{}
}

// TestHealthzTracksBreaker drives /healthz through a breaker trip and the
// ProbeDevices recovery sweep: 200 while healthy, 503 naming the open
// breaker's device while tripped, 200 again once the sweep closes it.
func TestHealthzTracksBreaker(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 1 << 20,
		Transport:    TransportPolicy{MaxAttempts: 1, BreakerThreshold: 1, OpTimeout: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dead := store.NewFlaky(store.NewMem(0), 1)
	if err := sys.AttachDevice("a-dead", dead); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("b-good", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 1)

	if code, hr := getHealth(t, sys); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthy system: code %d, %+v", code, hr)
	}

	// Kill the link; the selection probe trips a-dead's breaker.
	dead.FailNext(store.OpPut, -1)
	dead.FailNext(store.OpStats, -1)
	if _, err := sys.SwapOut(clusters[0]); err != nil {
		t.Fatal(err)
	}
	if !sys.TransportSnapshot().Devices["a-dead"].BreakerOpen {
		t.Fatal("breaker not open after failed selection probe")
	}
	code, hr := getHealth(t, sys)
	if code != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("tripped breaker: code %d, %+v", code, hr)
	}
	breakers := checkNamed(t, hr, "breakers")
	if breakers.OK || !strings.Contains(breakers.Error, "a-dead") {
		t.Fatalf("breakers check should name a-dead: %+v", breakers)
	}

	// The link returns; one recovery sweep closes the breaker and /healthz
	// goes green again.
	dead.FailNext(store.OpPut, 0)
	dead.FailNext(store.OpStats, 0)
	if got := sys.ProbeDevices(context.Background()); len(got) != 1 || got[0] != "a-dead" {
		t.Fatalf("recovered = %v", got)
	}
	if code, hr := getHealth(t, sys); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("recovered system: code %d, %+v", code, hr)
	}
}

// traceCapture wraps the store handler the way cmd/swapstore does: it
// records each request's X-Obiswap-Trace header and emits a structured
// access-log line carrying the trace when present.
type traceCapture struct {
	next http.Handler
	lg   *olog.Logger

	mu     sync.Mutex
	traces []string
}

func (tc *traceCapture) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	trace := r.Header.Get(obs.TraceHeader)
	tc.mu.Lock()
	tc.traces = append(tc.traces, trace)
	tc.mu.Unlock()
	pairs := []any{"method", r.Method, "path", r.URL.Path}
	if trace != "" {
		pairs = append(pairs, "trace", trace)
	}
	tc.lg.Info("request", pairs...)
	tc.next.ServeHTTP(w, r)
}

// TestTracePropagatesToStoreLog runs one swap-out against an HTTP store and
// follows its trace ID end to end: the span in the constrained device's
// /debug/traces dump, the X-Obiswap-Trace header observed by the serving
// side, and the serving side's structured access-log line all carry the same
// ID.
func TestTracePropagatesToStoreLog(t *testing.T) {
	var logBuf bytes.Buffer
	capture := &traceCapture{
		next: store.NewHandler(store.NewMem(0)),
		lg:   olog.New(&logBuf, olog.WithClock(obs.NewVirtualClock(time.Unix(0, 0)))),
	}
	srv := httptest.NewServer(capture)
	defer srv.Close()

	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("lan-pc", store.NewClient(srv.URL)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 1)
	ev, err := sys.SwapOut(clusters[0])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Trace == "" {
		t.Fatal("swap event carries no trace ID")
	}

	// The constrained device's flight recorder has the span, under the same
	// trace ID the event reported.
	rec := httptest.NewRecorder()
	sys.OpsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	var dump struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/traces: %v\n%s", err, rec.Body.String())
	}
	var span *obs.SpanRecord
	for i := range dump.Spans {
		if dump.Spans[i].Op == "swap_out" && dump.Spans[i].Trace == ev.Trace {
			span = &dump.Spans[i]
		}
	}
	if span == nil {
		t.Fatalf("no swap_out span with trace %q in %+v", ev.Trace, dump.Spans)
	}
	if span.Outcome != "ok" || len(span.Phases) == 0 {
		t.Fatalf("span missing phase timings: %+v", span)
	}

	// The serving side saw the same ID on the wire…
	capture.mu.Lock()
	traces := append([]string(nil), capture.traces...)
	capture.mu.Unlock()
	shipped := false
	for _, tr := range traces {
		if tr == ev.Trace {
			shipped = true
		}
	}
	if !shipped {
		t.Fatalf("store never saw header %s=%q (got %v)", obs.TraceHeader, ev.Trace, traces)
	}

	// …and its access log carries it.
	if !strings.Contains(logBuf.String(), "trace="+ev.Trace) {
		t.Fatalf("store access log missing trace %q:\n%s", ev.Trace, logBuf.String())
	}
}
