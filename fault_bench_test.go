package objectswap

// Pointer-chase benchmark for the asynchronous fault engine: a list of
// objects spread across a chain of swap-clusters is walked end to end after
// everything was swapped out. Without prefetch every cluster boundary is a
// demand fault (device round trip + decode + install); with the
// graph-driven prefetcher the next cluster is speculatively resident by the
// time the walker arrives, and the crossing costs an inventory map lookup.
// TestFaultBenchSmoke is the check.sh gate asserting the ≥10x separation;
// BenchmarkPointerChase produces the BENCH_fault.json numbers.

import (
	"fmt"
	"strings"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

const (
	chaseClusters   = 16
	chasePerCluster = 32
	chasePayload    = 128
)

// buildChaseChain allocates chaseClusters clusters of chasePerCluster nodes
// each, linked into one list crossing every cluster boundary, and roots the
// head. Returns the cluster ids in chain order.
func buildChaseChain(t testing.TB, sys *System) []ClusterID {
	t.Helper()
	cls, err := sys.Runtime().Registry().Lookup("Task")
	if err != nil {
		cls = sys.MustRegisterClass(taskClass())
	}
	payload := strings.Repeat("x", chasePayload)
	var clusters []ClusterID
	var prev *heap.Object
	var head *heap.Object
	for c := 0; c < chaseClusters; c++ {
		cluster := sys.NewCluster()
		clusters = append(clusters, cluster)
		for i := 0; i < chasePerCluster; i++ {
			o, err := sys.NewObject(cls, cluster)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SetField(o.RefTo(), "title", heap.Str(payload)); err != nil {
				t.Fatal(err)
			}
			if prev != nil {
				if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
					t.Fatal(err)
				}
			} else {
				head = o
			}
			prev = o
		}
	}
	if err := sys.SetRoot("chase-head", head.RefTo()); err != nil {
		t.Fatal(err)
	}
	return clusters
}

// swapOutChase detaches the whole chain, tail first.
func swapOutChase(t testing.TB, sys *System, clusters []ClusterID) {
	t.Helper()
	for i := len(clusters) - 1; i >= 0; i-- {
		if _, err := sys.SwapOut(clusters[i]); err != nil {
			t.Fatalf("swap-out %d: %v", clusters[i], err)
		}
	}
	sys.Collect()
}

// walkChase follows next links across the whole chain, quiescing the
// prefetcher at each cluster boundary so speculation (when enabled) has
// landed before the walker crosses — the steady-state shape where the
// fetcher runs ahead of the chaser.
func walkChase(t testing.TB, sys *System) {
	t.Helper()
	cur, err := sys.MustRoot("chase-head")
	if err != nil {
		t.Fatal(err)
	}
	total := chaseClusters * chasePerCluster
	for i := 0; i < total; i++ {
		v, err := sys.Field(cur, "next")
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if v.IsNil() {
			break
		}
		cur = v
		if i%chasePerCluster == chasePerCluster-2 {
			sys.Runtime().FaultEngine().Quiesce()
		}
	}
}

// TestFaultBenchSmoke is the check.sh performance gate: after one full
// pointer chase with the prefetcher on, the mean prefetch-hit crossing must
// be at least 10x cheaper than the mean demand fault, and at least half the
// cluster boundaries must have been hits.
func TestFaultBenchSmoke(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 16 << 20, // roomy: the admission guard must never trip here
		Prefetch:     PrefetchConfig{Depth: 2, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}

	clusters := buildChaseChain(t, sys)
	swapOutChase(t, sys, clusters)
	walkChase(t, sys)
	sys.Runtime().FaultEngine().Quiesce()

	reg := sys.Metrics()
	demand, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds",
		"swap_in", "reload", "demand")
	if !ok || demand.Count == 0 {
		t.Fatal("no demand faults recorded — the walk never missed?")
	}
	hits, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds",
		"swap_in", "reload", "prefetch-hit")
	if !ok || hits.Count == 0 {
		t.Fatalf("no prefetch hits recorded; engine: %+v",
			sys.Runtime().FaultEngine().Snapshot())
	}
	if hits.Count < chaseClusters/2 {
		t.Fatalf("prefetch hits = %d, want at least %d of %d boundaries; engine: %+v",
			hits.Count, chaseClusters/2, chaseClusters,
			sys.Runtime().FaultEngine().Snapshot())
	}

	demandMean := demand.Sum / float64(demand.Count)
	hitMean := hits.Sum / float64(hits.Count)
	if hitMean <= 0 {
		return // hits below clock resolution: unmeasurably fast is a pass
	}
	ratio := demandMean / hitMean
	t.Logf("demand mean %.2fµs (n=%d), prefetch-hit mean %.3fµs (n=%d), ratio %.0fx",
		demandMean*1e6, demand.Count, hitMean*1e6, hits.Count, ratio)
	if ratio < 10 {
		t.Fatalf("prefetch hit only %.1fx faster than demand fault, want >= 10x", ratio)
	}
}

// BenchmarkPointerChase measures one full chain walk per iteration —
// demand-only vs prefetch-ahead. The recorded wall time covers swap-out +
// walk; the per-crossing split lives in the objectswap_fault_seconds
// histogram (see BENCH_fault.json).
func BenchmarkPointerChase(b *testing.B) {
	for _, mode := range []struct {
		name  string
		depth int
	}{{"demand", 0}, {"prefetch", 2}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, err := New(Config{
				HeapCapacity: 16 << 20,
				Prefetch:     PrefetchConfig{Depth: mode.depth, Workers: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
				b.Fatal(err)
			}
			clusters := buildChaseChain(b, sys)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				swapOutChase(b, sys, clusters)
				walkChase(b, sys)
			}
			b.StopTimer()
			reg := sys.Metrics()
			for _, kind := range []string{"demand", "prefetch-hit"} {
				if hs, ok := reg.HistogramSnapshotOf("objectswap_fault_seconds",
					"swap_in", "reload", kind); ok && hs.Count > 0 {
					b.ReportMetric(hs.Sum/float64(hs.Count)*1e9, fmt.Sprintf("ns/%s", kind))
				}
			}
		})
	}
}
