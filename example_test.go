package objectswap_test

import (
	"fmt"

	"objectswap"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// counterClass declares a tiny application class for the examples.
func counterClass() *heap.Class {
	c := heap.NewClass("Counter",
		heap.FieldDef{Name: "n", Kind: heap.KindInt},
		heap.FieldDef{Name: "peer", Kind: heap.KindRef},
	)
	c.AddMethod("incr", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("n")
		if err != nil {
			return nil, err
		}
		i, _ := v.Int()
		if err := call.Self.SetFieldByName("n", heap.Int(i+1)); err != nil {
			return nil, err
		}
		return []heap.Value{heap.Int(i + 1)}, nil
	})
	return c
}

// Example shows the complete lifecycle: build, swap out, reclaim, fault in.
func Example() {
	sys, _ := objectswap.New(objectswap.Config{HeapCapacity: 1 << 20})
	_ = sys.AttachDevice("neighbor", store.NewMem(0))
	cls := sys.MustRegisterClass(counterClass())

	cluster := sys.NewCluster()
	obj, _ := sys.NewObject(cls, cluster)
	_ = sys.SetRoot("counter", obj.RefTo())
	_, _ = sys.Invoke(obj.RefTo(), "incr")
	_, _ = sys.Invoke(obj.RefTo(), "incr")

	ev, _ := sys.SwapOut(cluster)
	sys.Collect()
	fmt.Printf("shipped %d object(s) away\n", ev.Objects)

	// Touching the root faults the cluster back in transparently.
	root, _ := sys.MustRoot("counter")
	out, _ := sys.Invoke(root, "incr")
	n, _ := out[0].Int()
	fmt.Printf("counter after reload: %d\n", n)
	// Output:
	// shipped 1 object(s) away
	// counter after reload: 3
}

// ExampleSystem_RefEqual demonstrates application-level identity across
// swap-cluster-proxies.
func ExampleSystem_RefEqual() {
	sys, _ := objectswap.New(objectswap.Config{})
	_ = sys.AttachDevice("neighbor", store.NewMem(0))
	cls := sys.MustRegisterClass(counterClass())

	a := sys.NewCluster()
	b := sys.NewCluster()
	target, _ := sys.NewObject(cls, a)
	holder, _ := sys.NewObject(cls, b)
	// Store the same target behind two different mediations.
	_ = sys.SetRoot("direct-ish", target.RefTo()) // proxied for cluster 0
	_ = sys.SetField(holder.RefTo(), "peer", target.RefTo())

	viaRoot, _ := sys.MustRoot("direct-ish")
	viaField, _ := sys.Field(holder.RefTo(), "peer")
	eq, _ := sys.RefEqual(viaRoot, viaField)
	fmt.Println("same object:", eq)
	// Output:
	// same object: true
}
