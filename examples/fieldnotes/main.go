// Fieldnotes: the complete OBIWAN mobility story in one run —
//
//  1. HOARD:      prefetch the whole notebook from the base station
//     (incremental replication, eager);
//  2. DISCONNECT: the base station disappears;
//  3. WORK:       edit notes locally while the policy engine swaps cold
//     sections to a nearby storage node (swapping needs no
//     master — only the dumb neighbor);
//  4. RECONNECT:  push the dirty replicas back to the master
//     (last-writer-wins write-back).
//
// Run with:
//
//	go run ./examples/fieldnotes
package main

import (
	"context"
	"fmt"
	"log"

	"objectswap"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/replication"
	"objectswap/internal/store"
)

const (
	sections        = 6
	notesPerSection = 10
)

func noteClass() *heap.Class {
	c := heap.NewClass("FieldNote",
		heap.FieldDef{Name: "text", Kind: heap.KindString},
		heap.FieldDef{Name: "revised", Kind: heap.KindBool},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	c.AddMethod("text", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("text")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	return c
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Base station with the master notebook.
	masterReg := heap.NewRegistry()
	masterReg.MustRegister(noteClass())
	master := replication.NewMaster(masterReg, notesPerSection)
	cls, _ := masterReg.Lookup("FieldNote")
	var prev *heap.Object
	total := 0
	for s := 0; s < sections; s++ {
		for n := 0; n < notesPerSection; n++ {
			o, err := master.Heap().New(cls)
			if err != nil {
				return err
			}
			o.MustSet("text", heap.Str(fmt.Sprintf("sec%d/note%d: draft", s, n)))
			if prev == nil {
				master.Heap().SetRoot("notebook", o.RefTo())
			} else {
				prev.MustSet("next", o.RefTo())
			}
			prev = o
			total++
		}
	}
	fmt.Printf("base station holds %d notes\n", total)

	// The PDA.
	sys, err := objectswap.New(objectswap.Config{
		HeapCapacity:    16 << 10,
		MemoryThreshold: 0.7,
		DeviceName:      "field-pda",
	})
	if err != nil {
		return err
	}
	if err := sys.AttachDevice("storage-box", store.NewMem(0)); err != nil {
		return err
	}
	sys.MustRegisterClass(noteClass())
	repl := sys.ReplicateFrom(master, 1)
	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("   [swap] section cluster %d -> %s (%d bytes)\n", e.Cluster, e.Device, e.Bytes)
	})

	// 1. HOARD.
	n, err := repl.Prefetch(context.Background(), "notebook", 0)
	if err != nil {
		return err
	}
	fmt.Printf("hoarded %d notes in %d shipments\n\n", n, repl.StatsSnapshot().ClustersFetched)

	// 2. DISCONNECT: any further fault to the master would fail loudly.
	sys.Runtime().SetFaultHandler(nil)
	fmt.Println("base station disconnected; working offline...")

	// 3. WORK: revise every 7th note; pressure moves cold sections to the
	// storage box and back, entirely offline.
	cur, err := sys.MustRoot("notebook")
	if err != nil {
		return err
	}
	idx, revised := 0, 0
	for !cur.IsNil() {
		sys.Monitor().Check()
		if idx%7 == 0 {
			out, err := sys.Invoke(cur, "text")
			if err != nil {
				return fmt.Errorf("note %d: %w", idx, err)
			}
			text, _ := out[0].Str()
			if err := sys.SetField(cur, "text", heap.Str(text+" [REVISED]")); err != nil {
				return err
			}
			if err := sys.SetField(cur, "revised", heap.Bool(true)); err != nil {
				return err
			}
			revised++
		}
		cur, err = sys.Field(cur, "next")
		if err != nil {
			return err
		}
		idx++
	}
	fmt.Printf("revised %d notes offline; %d dirty replicas pending\n\n", revised, repl.DirtyCount())

	// 4. RECONNECT and write back.
	fmt.Println("base station back in range; pushing updates...")
	pushed, err := repl.PushUpdates(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("pushed %d updated notes\n", pushed)

	// Verify on the master.
	verified := 0
	cur, _ = master.Heap().Root("notebook")
	mrt := master.Runtime()
	for !cur.IsNil() {
		out, err := mrt.Invoke(cur, "text")
		if err != nil {
			return err
		}
		if text, _ := out[0].Str(); len(text) > 9 && text[len(text)-9:] == "[REVISED]" {
			verified++
		}
		nv, err := mrt.Invoke(cur, "next")
		if err != nil {
			return err
		}
		cur = nv[0]
	}
	fmt.Printf("master now shows %d revised notes — %v\n", verified, verified == revised)
	if verified != revised {
		return fmt.Errorf("write-back mismatch")
	}
	return nil
}
