// Package album declares the photoalbum's application model as an annotated
// Go struct; the rest of the package is obicomp output, regenerated with:
//
//go:generate go run objectswap/cmd/obicomp -dir .
package album

// Photo is one photo in an album: a thumbnail payload, caption, and the next
// photo. obicomp generates the class, accessors, wire codec and the typed
// PhotoRef wrapper; main.go adds the hand-written thumbSize method on top —
// generated static dispatch and closure methods coexist on one class.
//
//obiswap:class
type Photo struct {
	Thumb   []byte
	Caption string
	Next    *Photo
}
