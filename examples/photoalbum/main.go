// Photoalbum: the paper's prototypical PDA scenario.
//
// A photo-viewer on a memory-constrained PDA keeps several albums of photos
// (thumbnails + metadata) as one swap-cluster per album. The heap cannot hold
// every album, so the memory monitor and the XML policy engine demote the
// coldest albums to a nearby desktop PC (a disk store holding plain XML
// files) whenever occupancy crosses the threshold. Browsing an album that was
// demoted faults it back transparently — possibly demoting another.
//
// The Photo class is declared once in album/model.go and compiled by obicomp
// (`go generate ./examples/photoalbum/album`); the hand-written thumbSize
// method below is layered on top of the generated static dispatch.
//
// Run with:
//
//	go run ./examples/photoalbum
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"objectswap"
	"objectswap/examples/photoalbum/album"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

const (
	albums         = 8
	photosPerAlbum = 12
	thumbnailBytes = 512
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// photoClass is the obicomp-generated Photo class with one hand-written
// method added: generated accessor dispatch answers get/set calls, the
// closure table still serves everything else.
func photoClass() *heap.Class {
	c := album.NewPhotoClass()
	c.AddMethod("thumbSize", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("thumb")
		if err != nil {
			return nil, err
		}
		return []heap.Value{heap.Int(int64(v.BytesLen()))}, nil
	})
	return c
}

func run() error {
	// The PDA: a small heap plus an aggressive 70% pressure threshold.
	sys, err := objectswap.New(objectswap.Config{
		HeapCapacity:    48 << 10,
		MemoryThreshold: 0.7,
	})
	if err != nil {
		return err
	}

	// The nearby desktop PC: swapped albums live as XML files on disk.
	dir := filepath.Join(os.TempDir(), "objectswap-photoalbum")
	disk, err := store.NewDisk(dir, 0)
	if err != nil {
		return err
	}
	if err := sys.AttachDevice("desktop-pc", disk); err != nil {
		return err
	}
	fmt.Printf("desktop PC stores swapped albums under %s\n\n", dir)

	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("   [middleware] album cluster %d demoted to %s (%d bytes XML)\n",
			e.Cluster, e.Device, e.Bytes)
	})
	sys.Bus().Subscribe(event.TopicSwapIn, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("   [middleware] album cluster %d promoted back\n", e.Cluster)
	})

	photo := sys.MustRegisterClass(photoClass())

	// Import albums; the policy engine demotes cold ones as pressure mounts.
	thumb := make([]byte, thumbnailBytes)
	clusters := make([]objectswap.ClusterID, albums)
	for a := 0; a < albums; a++ {
		clusters[a] = sys.NewCluster()
		var prev *heap.Object
		for p := 0; p < photosPerAlbum; p++ {
			o, err := sys.NewObject(photo, clusters[a])
			if err != nil {
				return fmt.Errorf("album %d photo %d: %w", a, p, err)
			}
			if err := sys.SetField(o.RefTo(), "thumb", heap.Bytes(thumb)); err != nil {
				return err
			}
			caption := fmt.Sprintf("album-%d/IMG_%04d", a, p)
			if err := sys.SetField(o.RefTo(), "caption", heap.Str(caption)); err != nil {
				return err
			}
			if prev == nil {
				if err := sys.SetRoot(fmt.Sprintf("album-%d", a), o.RefTo()); err != nil {
					return err
				}
			} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
				return err
			}
			prev = o
		}
		fmt.Printf("imported album %d (%d photos)\n", a, photosPerAlbum)
	}

	st := sys.Heap().StatsSnapshot()
	fmt.Printf("\nheap after import: %d/%d bytes (%.0f%%)\n",
		st.Used, st.Capacity, st.UsedFraction()*100)
	resident, swapped := 0, 0
	for _, info := range sys.Clusters() {
		if info.ID == objectswap.RootCluster {
			continue
		}
		if info.Swapped {
			swapped++
		} else {
			resident++
		}
	}
	fmt.Printf("albums resident: %d, demoted to desktop: %d\n\n", resident, swapped)

	// The user browses albums in a skewed pattern: old albums are opened
	// again, faulting them back (and demoting others).
	for _, a := range []int{0, 1, 7, 0, 3, 6} {
		fmt.Printf("browsing album %d...\n", a)
		cur, err := sys.MustRoot(fmt.Sprintf("album-%d", a))
		if err != nil {
			return err
		}
		count := 0
		var bytes int64
		for !cur.IsNil() {
			out, err := sys.Invoke(cur, "thumbSize")
			if err != nil {
				return fmt.Errorf("album %d photo %d: %w", a, count, err)
			}
			n, _ := out[0].Int()
			bytes += n
			cur, err = album.AsPhoto(sys.Runtime(), cur).GetNext()
			if err != nil {
				return err
			}
			count++
		}
		fmt.Printf("   viewed %d photos (%d thumbnail bytes)\n", count, bytes)
	}

	st = sys.Heap().StatsSnapshot()
	fmt.Printf("\nfinal heap: %d/%d bytes, %d collections\n", st.Used, st.Capacity, st.Collections)
	keys, _ := disk.Keys(context.Background())
	fmt.Printf("XML files on the desktop PC: %d\n", len(keys))
	return nil
}
