// Contactbook: the obicomp workflow end to end.
//
// The application model (contacts and groups) is declared once in
// contacts/schema.xml; every Go file in the contacts package is obicomp
// output (`go generate ./examples/contactbook/contacts`): per-class static
// dispatch, specialized wire codecs, and typed proxy-stub wrappers.
//
// The program builds contact groups purely through generated accessors
// (setters route every reference through interception, so cross-cluster
// links are proxied without any hand-written middleware code), swaps cold
// groups out, and reads everything back through the typed wrappers.
//
// Run with:
//
//	go run ./examples/contactbook
package main

import (
	"fmt"
	"log"

	"objectswap"
	"objectswap/examples/contactbook/contacts"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := objectswap.New(objectswap.Config{HeapCapacity: 96 << 10})
	if err != nil {
		return err
	}
	if err := sys.AttachDevice("laptop", store.NewMem(0)); err != nil {
		return err
	}
	// Generated registration: one call installs every schema class.
	if err := contacts.RegisterAll(sys); err != nil {
		return err
	}
	// Allocation uses the registered class instances, resolved by name.
	contactReg, err := sys.Runtime().Registry().Lookup("Contact")
	if err != nil {
		return err
	}
	groupReg, err := sys.Runtime().Registry().Lookup("Group")
	if err != nil {
		return err
	}

	vcard := make([]byte, 256)
	groups := []string{"family", "work", "football", "archive"}
	for gi, label := range groups {
		cluster := sys.NewCluster()
		g, err := sys.NewObject(groupReg, cluster)
		if err != nil {
			return err
		}
		// Generated accessors: setLabel / setSize / setFirst.
		if _, err := sys.Invoke(g.RefTo(), "setLabel", heap.Str(label)); err != nil {
			return err
		}
		var prev *heap.Object
		const perGroup = 12
		for i := 0; i < perGroup; i++ {
			c, err := sys.NewObject(contactReg, cluster)
			if err != nil {
				return err
			}
			if _, err := sys.Invoke(c.RefTo(), "setName",
				heap.Str(fmt.Sprintf("%s-contact-%02d", label, i))); err != nil {
				return err
			}
			if _, err := sys.Invoke(c.RefTo(), "setPhone",
				heap.Str(fmt.Sprintf("+351-9%02d-%03d", gi, i))); err != nil {
				return err
			}
			if _, err := sys.Invoke(c.RefTo(), "setVcard", heap.Bytes(vcard)); err != nil {
				return err
			}
			if prev == nil {
				if _, err := sys.Invoke(g.RefTo(), "setFirst", c.RefTo()); err != nil {
					return err
				}
			} else if _, err := sys.Invoke(prev.RefTo(), "setNext", c.RefTo()); err != nil {
				return err
			}
			prev = c
		}
		if _, err := sys.Invoke(g.RefTo(), "setSize", heap.Int(perGroup)); err != nil {
			return err
		}
		if err := sys.SetRoot("group-"+label, g.RefTo()); err != nil {
			return err
		}
		fmt.Printf("built group %q (%d contacts)\n", label, perGroup)
	}

	// Swap the cold groups out explicitly.
	for _, label := range []string{"football", "archive"} {
		root, err := sys.MustRoot("group-" + label)
		if err != nil {
			return err
		}
		obj, err := sys.Runtime().Deref(root)
		if err != nil {
			return err
		}
		cluster := sys.Runtime().Manager().ClusterOf(obj.ID())
		ev, err := sys.SwapOut(cluster)
		if err != nil {
			return err
		}
		fmt.Printf("group %q swapped to %s (%d bytes XML)\n", label, ev.Device, ev.Bytes)
	}
	sys.Collect()
	fmt.Printf("heap after swapping cold groups: %d bytes\n\n", sys.Heap().Used())

	// Read every group back through the generated typed wrappers; swapped
	// groups fault back transparently on the first access.
	for _, label := range groups {
		root, err := sys.MustRoot("group-" + label)
		if err != nil {
			return err
		}
		g := contacts.AsGroup(sys.Runtime(), root)
		name, err := g.GetLabel()
		if err != nil {
			return err
		}
		first, err := g.GetFirst()
		if err != nil {
			return err
		}
		cur := first
		count := 0
		var firstPhone string
		for !cur.IsNil() {
			c := contacts.AsContact(sys.Runtime(), cur)
			if count == 0 {
				if firstPhone, err = c.GetPhone(); err != nil {
					return err
				}
			}
			if cur, err = c.GetNext(); err != nil {
				return err
			}
			count++
		}
		fmt.Printf("group %-10s %2d contacts (first: %s)\n", name, count, firstPhone)
	}
	return nil
}
