// Package contacts is the contactbook's application model. The classes are
// declared once in schema.xml; everything else in this package is obicomp
// output — typed accessors, static dispatch, specialized wire codecs —
// regenerated with:
//
//go:generate go run objectswap/cmd/obicomp -dir .
package contacts
