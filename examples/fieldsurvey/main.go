// Fieldsurvey: incremental replication plus swapping, end to end over HTTP.
//
// A field-survey PDA replicates a reference catalogue (species records) from
// a base-station master node incrementally: records arrive in clusters only
// when first consulted, grouped two replication clusters per swap-cluster.
// Meanwhile the surveyor captures observations locally. When the PDA's heap
// fills, cold catalogue clusters are swapped to a nearby storage node reached
// through the HTTP web-services bridge — the paper's full deployment picture,
// with every hop exercised in one process via httptest servers.
//
// Run with:
//
//	go run ./examples/fieldsurvey
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"objectswap"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/replication"
	"objectswap/internal/store"
)

const catalogueSize = 120

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// speciesClass is the catalogue record: name, habitat notes, chained.
func speciesClass() *heap.Class {
	c := heap.NewClass("Species",
		heap.FieldDef{Name: "name", Kind: heap.KindString},
		heap.FieldDef{Name: "notes", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	c.AddMethod("name", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("name")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, err := call.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	return c
}

// observationClass is the locally captured data.
func observationClass() *heap.Class {
	c := heap.NewClass("Observation",
		heap.FieldDef{Name: "species", Kind: heap.KindString},
		heap.FieldDef{Name: "location", Kind: heap.KindString},
	)
	c.AddMethod("summary", func(call *heap.Call) ([]heap.Value, error) {
		sp, err := call.Self.FieldByName("species")
		if err != nil {
			return nil, err
		}
		loc, err := call.Self.FieldByName("location")
		if err != nil {
			return nil, err
		}
		s, _ := sp.Str()
		l, _ := loc.Str()
		return []heap.Value{heap.Str(s + " @ " + l)}, nil
	})
	return c
}

func run() error {
	// --- Base station: master node serving the catalogue over HTTP -------
	masterReg := heap.NewRegistry()
	masterReg.MustRegister(speciesClass())
	master := replication.NewMaster(masterReg, 15) // 15 records per shipment
	cls, _ := masterReg.Lookup("Species")
	var prev *heap.Object
	for i := 0; i < catalogueSize; i++ {
		o, err := master.Heap().New(cls)
		if err != nil {
			return err
		}
		o.MustSet("name", heap.Str(fmt.Sprintf("species-%03d", i))).
			MustSet("notes", heap.Bytes(make([]byte, 96)))
		if prev == nil {
			master.Heap().SetRoot("catalogue", o.RefTo())
		} else {
			prev.MustSet("next", o.RefTo())
		}
		prev = o
	}
	baseStation := httptest.NewServer(replication.NewHandler(master))
	defer baseStation.Close()
	fmt.Printf("base station (master) at %s serving %d records\n", baseStation.URL, catalogueSize)

	// --- Nearby storage node over the HTTP store bridge ------------------
	storageNode := httptest.NewServer(store.NewHandler(store.NewMem(0)))
	defer storageNode.Close()
	fmt.Printf("storage node at %s\n\n", storageNode.URL)

	// --- The PDA ----------------------------------------------------------
	sys, err := objectswap.New(objectswap.Config{
		HeapCapacity:    28 << 10,
		MemoryThreshold: 0.75,
	})
	if err != nil {
		return err
	}
	if err := sys.AttachDevice("storage-node", store.NewClient(storageNode.URL)); err != nil {
		return err
	}
	sys.MustRegisterClass(speciesClass())
	obsCls := sys.MustRegisterClass(observationClass())

	repl := sys.ReplicateFrom(replication.NewClient(baseStation.URL), 2)

	sys.Bus().Subscribe(event.TopicClusterReplicated, func(ev event.Event) {
		e := ev.Payload.(replication.ClusterEvent)
		fmt.Printf("   [replication] %d records arrived into swap-cluster %d\n", e.Objects, e.SwapCluster)
	})
	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("   [swapping] cluster %d -> %s (%d bytes XML)\n", e.Cluster, e.Device, e.Bytes)
	})
	sys.Bus().Subscribe(event.TopicSwapIn, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("   [swapping] cluster %d faulted back\n", e.Cluster)
	})

	if _, err := repl.ReplicateRoot(context.Background(), "catalogue"); err != nil {
		return err
	}

	// The surveyor looks up every 10th species (pulling catalogue clusters
	// on demand) and records an observation for each hit.
	obsCluster := sys.NewCluster()
	fmt.Println("surveying...")
	cur, err := sys.MustRoot("catalogue")
	if err != nil {
		return err
	}
	idx, captured := 0, 0
	for !cur.IsNil() {
		if idx%10 == 0 {
			out, err := sys.Invoke(cur, "name")
			if err != nil {
				return fmt.Errorf("catalogue record %d: %w", idx, err)
			}
			name, _ := out[0].Str()
			obs, err := sys.NewObject(obsCls, obsCluster)
			if err != nil {
				return err
			}
			if err := sys.SetField(obs.RefTo(), "species", heap.Str(name)); err != nil {
				return err
			}
			if err := sys.SetField(obs.RefTo(), "location",
				heap.Str(fmt.Sprintf("grid-%02d", idx/10))); err != nil {
				return err
			}
			if err := sys.SetRoot(fmt.Sprintf("obs-%02d", captured), obs.RefTo()); err != nil {
				return err
			}
			captured++
		}
		cur, err = sys.Field(cur, "next")
		if err != nil {
			return fmt.Errorf("advance at record %d: %w", idx, err)
		}
		idx++
	}

	st := sys.Heap().StatsSnapshot()
	rs := repl.StatsSnapshot()
	fmt.Printf("\nsurvey done: %d observations captured, %d catalogue records replicated in %d shipments\n",
		captured, rs.ObjectsInstalled, rs.ClustersFetched)
	fmt.Printf("PDA heap: %d/%d bytes\n", st.Used, st.Capacity)

	swapped := 0
	for _, info := range sys.Clusters() {
		if info.Swapped {
			swapped++
		}
	}
	fmt.Printf("catalogue clusters currently on the storage node: %d\n\n", swapped)

	// Review the captured observations (all local, never swapped: they are
	// in a warm cluster).
	fmt.Println("captured observations:")
	for i := 0; i < captured; i++ {
		root, err := sys.MustRoot(fmt.Sprintf("obs-%02d", i))
		if err != nil {
			return err
		}
		out, err := sys.Invoke(root, "summary")
		if err != nil {
			return err
		}
		s, _ := out[0].Str()
		fmt.Println("  ", s)
	}
	return nil
}
