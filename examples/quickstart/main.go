// Quickstart: the smallest complete Object-Swapping program.
//
// It builds one swap-cluster of objects on a constrained device, swaps it out
// to a nearby in-memory device, shows that the memory came back, and then
// touches the data — which transparently faults the whole cluster back in.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"objectswap"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A device with a 64 KiB heap.
	sys, err := objectswap.New(objectswap.Config{HeapCapacity: 64 << 10})
	if err != nil {
		return err
	}
	// A nearby device: anything that can store, return and drop XML text.
	if err := sys.AttachDevice("desktop-pc", store.NewMem(0)); err != nil {
		return err
	}

	// An application class: a note with text and a link to the next note.
	note := heap.NewClass("Note",
		heap.FieldDef{Name: "text", Kind: heap.KindString},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	note.AddMethod("text", func(c *heap.Call) ([]heap.Value, error) {
		v, err := c.Self.FieldByName("text")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	note.AddMethod("next", func(c *heap.Call) ([]heap.Value, error) {
		v, err := c.Self.FieldByName("next")
		if err != nil {
			return nil, err
		}
		return []heap.Value{v}, nil
	})
	sys.MustRegisterClass(note)

	// Build ten notes in one swap-cluster, rooted at "notes".
	cluster := sys.NewCluster()
	var prev *heap.Object
	for i := 0; i < 10; i++ {
		o, err := sys.NewObject(note, cluster)
		if err != nil {
			return err
		}
		if err := sys.SetField(o.RefTo(), "text", heap.Str(fmt.Sprintf("note #%d", i))); err != nil {
			return err
		}
		if prev == nil {
			if err := sys.SetRoot("notes", o.RefTo()); err != nil {
				return err
			}
		} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
			return err
		}
		prev = o
	}
	fmt.Printf("built 10 notes: heap %d bytes used\n", sys.Heap().Used())

	// Swap the cluster out and reclaim its memory.
	ev, err := sys.SwapOut(cluster)
	if err != nil {
		return err
	}
	sys.Collect()
	fmt.Printf("swapped cluster %d to %q (%d bytes of XML): heap %d bytes used\n",
		ev.Cluster, ev.Device, ev.Bytes, sys.Heap().Used())

	// Touch the data: the middleware faults the whole cluster back in.
	cur, err := sys.MustRoot("notes")
	if err != nil {
		return err
	}
	for !cur.IsNil() {
		out, err := sys.Invoke(cur, "text")
		if err != nil {
			return err
		}
		text, _ := out[0].Str()
		fmt.Println(" ", text)
		cur, err = sys.Field(cur, "next")
		if err != nil {
			return err
		}
	}
	fmt.Printf("after transparent reload: heap %d bytes used\n", sys.Heap().Used())
	return nil
}
