// Quickstart: the smallest complete Object-Swapping program.
//
// The application model — one annotated Go struct — lives in notes/model.go;
// obicomp generates the Note class, its accessors and a typed NoteRef
// wrapper from it (`go generate ./examples/quickstart/notes`).
//
// The program builds one swap-cluster of notes on a constrained device,
// swaps it out to a nearby in-memory device, shows that the memory came
// back, and then touches the data — which transparently faults the whole
// cluster back in.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"objectswap"
	"objectswap/examples/quickstart/notes"
	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A device with a 64 KiB heap.
	sys, err := objectswap.New(objectswap.Config{HeapCapacity: 64 << 10})
	if err != nil {
		return err
	}
	// A nearby device: anything that can store, return and drop shipments.
	if err := sys.AttachDevice("desktop-pc", store.NewMem(0)); err != nil {
		return err
	}
	// One call registers every generated class.
	if err := notes.RegisterAll(sys); err != nil {
		return err
	}
	note, err := sys.Runtime().Registry().Lookup("Note")
	if err != nil {
		return err
	}

	// Build ten notes in one swap-cluster, rooted at "notes".
	cluster := sys.NewCluster()
	var prev notes.NoteRef
	for i := 0; i < 10; i++ {
		o, err := sys.NewObject(note, cluster)
		if err != nil {
			return err
		}
		n := notes.AsNote(sys.Runtime(), o.RefTo())
		if err := n.SetText(fmt.Sprintf("note #%d", i)); err != nil {
			return err
		}
		if i == 0 {
			if err := sys.SetRoot("notes", o.RefTo()); err != nil {
				return err
			}
		} else if err := prev.SetNext(o.RefTo()); err != nil {
			return err
		}
		prev = n
	}
	fmt.Printf("built 10 notes: heap %d bytes used\n", sys.Heap().Used())

	// Swap the cluster out and reclaim its memory.
	ev, err := sys.SwapOut(cluster)
	if err != nil {
		return err
	}
	sys.Collect()
	fmt.Printf("swapped cluster %d to %q (%d bytes of XML): heap %d bytes used\n",
		ev.Cluster, ev.Device, ev.Bytes, sys.Heap().Used())

	// Touch the data: the middleware faults the whole cluster back in.
	cur, err := sys.MustRoot("notes")
	if err != nil {
		return err
	}
	for !cur.IsNil() {
		n := notes.AsNote(sys.Runtime(), cur)
		text, err := n.GetText()
		if err != nil {
			return err
		}
		fmt.Println(" ", text)
		if cur, err = n.GetNext(); err != nil {
			return err
		}
	}
	fmt.Printf("after transparent reload: heap %d bytes used\n", sys.Heap().Used())
	return nil
}
