// Package notes declares the quickstart's application model as an annotated
// Go struct; every other file here is obicomp output, regenerated with:
//
//go:generate go run objectswap/cmd/obicomp -dir .
package notes

// Note is a linked note: obicomp turns this declaration into the Note class
// with static accessor dispatch, a specialized wire codec and a typed
// NoteRef wrapper.
//
//obiswap:class
type Note struct {
	Text string
	Next *Note
}
