package objectswap

// Many-tenant soak harness for the sharded swap core: a thousand concurrent
// swap-clusters worked by a pool of tenants against in-process donors (one of
// them flaky, for churn), under sustained eviction pressure from a heap sized
// below the working set and a background collector sweeping detached members.
// The shards=1 run is the control — the pre-sharding single global swap lock —
// and shards=8 is the default configuration. The contended window is the
// reserve/commit/install critical section of each swap: with one shard every
// tenant's install serializes behind every other's; with eight, only
// same-shard tenants queue. Results are recorded in BENCH_shard.json:
//
//	go test -bench BenchmarkShardSoak -benchtime 30000x -cpu 1,4,8 -run '^$' .

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objectswap/internal/bench"
	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/store"
)

func BenchmarkShardSoak(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runShardSoak(b, shards)
		})
	}
}

func runShardSoak(b *testing.B, shards int) {
	const (
		nClusters  = 1024
		perCluster = 32
		payloadLen = 64
	)

	sys, err := New(Config{Shards: shards, DeviceName: "soak"})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	// Three healthy donors plus one that drops ~5% of its calls: swap traffic
	// sees failovers, retries and breaker churn, like a real ad-hoc
	// neighborhood.
	for i := 0; i < 3; i++ {
		if err := sys.AttachDevice(fmt.Sprintf("donor-%d", i), store.NewMem(0)); err != nil {
			b.Fatal(err)
		}
	}
	flaky := store.NewFlaky(store.NewMem(0), 1)
	flaky.FailRate(store.OpPut, 0.05)
	flaky.FailRate(store.OpGet, 0.05)
	if err := sys.AttachDevice("donor-flaky", flaky); err != nil {
		b.Fatal(err)
	}

	cls := bench.NodeClass()
	sys.MustRegisterClass(cls)
	clusters := make([]core.ClusterID, nClusters)
	payload := make([]byte, payloadLen)
	for t := range clusters {
		cluster := sys.NewCluster()
		clusters[t] = cluster
		var prev *heap.Object
		for i := 0; i < perCluster; i++ {
			o, err := sys.NewObject(cls, cluster)
			if err != nil {
				b.Fatal(err)
			}
			if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
				b.Fatal(err)
			}
			if prev == nil {
				if err := sys.SetRoot(fmt.Sprintf("tenant-%d", t), o.RefTo()); err != nil {
					b.Fatal(err)
				}
			} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
				b.Fatal(err)
			}
			prev = o
		}
	}
	// Pre-swap half the tenants and sweep the detached members, then size the
	// heap just above the remaining resident set so reloads run under genuine
	// eviction pressure for the whole soak.
	if _, err := sys.SwapOutMany(clusters[:nClusters/2], 8); err != nil {
		b.Fatal(err)
	}
	sys.Collect()
	sys.Heap().SetCapacity(sys.Heap().Used() * 130 / 100)

	skippable := func(err error) bool {
		return errors.Is(err, core.ErrClusterBusy) || errors.Is(err, core.ErrClusterLoaded) ||
			errors.Is(err, core.ErrClusterSwapped) || errors.Is(err, core.ErrClusterEmpty) ||
			errors.Is(err, heap.ErrOutOfMemory)
	}

	workers := 16 * runtime.GOMAXPROCS(0)
	if workers > b.N {
		workers = b.N
	}
	var (
		remaining = int64(b.N)
		faults    atomic.Int64
		swapOuts  atomic.Int64
		skipped   atomic.Int64
		churn     atomic.Int64
		wg        sync.WaitGroup
		latMu     sync.Mutex
		faultLat  []time.Duration
	)
	// Background collector: detached swap-out members only return their bytes
	// at the next collection, so a periodic stop-the-world sweep is what keeps
	// the soak's reloads viable — and what exercises STW-vs-shard exclusion.
	collectDone := make(chan struct{})
	var collector sync.WaitGroup
	collector.Add(1)
	go func() {
		defer collector.Done()
		for {
			select {
			case <-collectDone:
				return
			case <-time.After(100 * time.Millisecond):
				sys.Collect()
			}
		}
	}()

	b.ResetTimer()
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lat []time.Duration
			for atomic.AddInt64(&remaining, -1) >= 0 {
				c := clusters[rng.Intn(nClusters)]
				switch r := rng.Intn(20); {
				case r < 9:
					// Fault a tenant back in (measured: this is the
					// latency an application blocked on an object fault
					// sees).
					t0 := time.Now()
					if _, err := sys.SwapIn(c); err == nil {
						faults.Add(1)
						lat = append(lat, time.Since(t0))
					} else if skippable(err) {
						skipped.Add(1)
					} else {
						// Fetch refused by a churning donor: the cluster
						// stays consistently swapped, retryable later.
						churn.Add(1)
					}
				case r < 18:
					if _, err := sys.SwapOut(c); err == nil {
						swapOuts.Add(1)
					} else if skippable(err) {
						skipped.Add(1)
					} else {
						churn.Add(1)
					}
				default:
					// Allocation churn: a transient unrooted object keeps
					// memory pressure live and, on a full heap, drives the
					// evictor.
					if o, err := sys.NewObject(cls, core.RootCluster); err == nil {
						_ = o.SetFieldByName("payload", heap.Bytes(payload))
					} else if !errors.Is(err, heap.ErrOutOfMemory) {
						b.Errorf("alloc: %v", err)
						return
					}
				}
			}
			latMu.Lock()
			faultLat = append(faultLat, lat...)
			latMu.Unlock()
		}(int64(w + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(collectDone)
	collector.Wait()
	b.StopTimer()

	sort.Slice(faultLat, func(i, j int) bool { return faultLat[i] < faultLat[j] })
	pct := func(p float64) float64 {
		if len(faultLat) == 0 {
			return 0
		}
		i := int(p * float64(len(faultLat)-1))
		return float64(faultLat[i].Microseconds()) / 1000
	}
	swaps := faults.Load() + swapOuts.Load()
	b.ReportMetric(float64(swaps)/elapsed.Seconds(), "swaps/s")
	b.ReportMetric(float64(faults.Load())/elapsed.Seconds(), "faults/s")
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.95), "p95-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
	b.ReportMetric(float64(skipped.Load()), "skipped")
	b.ReportMetric(float64(churn.Load()), "churn-errors")
	// Aggregate time all callers spent waiting for swap-shard locks, from the
	// per-shard lock-wait histograms: the direct measure of the contention
	// sharding removes (on a single-core host, where both configurations are
	// capped by the same CPU, this is where the difference shows).
	var waitSum float64
	for i := 0; i < sys.Runtime().Shards(); i++ {
		if hs, ok := sys.Metrics().HistogramSnapshotOf(
			"objectswap_swap_lock_wait_seconds", strconv.Itoa(i)); ok {
			waitSum += hs.Sum
		}
	}
	b.ReportMetric(waitSum, "lock-wait-s")
}
