package objectswap

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"objectswap/internal/obs"
	"objectswap/internal/store"
)

// newReportSystem assembles a small instrumented system with a deterministic
// clock, performs one swap-out/swap-in round trip, and returns it.
func newReportSystem(t *testing.T) (*System, *obs.VirtualClock) {
	t.Helper()
	clock := obs.NewVirtualClock(time.Unix(1000, 0))
	sys, err := New(Config{
		HeapCapacity: 1 << 20,
		DeviceName:   "pda-report",
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("neighbor", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	cluster := buildChains(t, sys, cls, 1, 5)[0]
	if _, err := sys.SwapOut(cluster); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SwapIn(cluster); err != nil {
		t.Fatal(err)
	}
	return sys, clock
}

func TestReportRendersObservabilityDigest(t *testing.T) {
	sys, _ := newReportSystem(t)
	report := sys.Report()

	// Structural sections survive the rebuild.
	for _, want := range []string{
		`device "pda-report"`,
		"heap: ",
		"swap-clusters (",
		"devices (1):",
		"  neighbor",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// The registry-derived digest covers the swap pipeline and the spine.
	for _, want := range []string{
		"swap pipeline:",
		"swap_out  1 ops",
		"swap_in   1 ops",
		"encode", "ship", "fetch", "install",
		"bus: ",
		"policy: ",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// 6 objects allocated (5 tasks + replacement bookkeeping is internal):
	// the heap line reads live callback gauges, not a cached snapshot.
	if !strings.Contains(report, fmt.Sprintf("%d objects", sys.Heap().Len())) {
		t.Errorf("report heap line disagrees with live heap:\n%s", report)
	}
}

func TestWriteMetricsCoversEveryLayer(t *testing.T) {
	sys, _ := newReportSystem(t)
	sys.Monitor().Check()
	sys.Engine() // engine instrumented at New; policies evaluate on events

	var b strings.Builder
	if err := sys.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()

	// At least one family from each layer of the spine.
	for _, want := range []string{
		// heap
		`objectswap_heap_used_bytes{device="pda-report"}`,
		`objectswap_heap_gc_cycles_total{device="pda-report"}`,
		// core swap pipeline (counter, histogram with phases)
		`objectswap_swap_spans_total{op="swap_out"} 1`,
		`objectswap_swap_spans_total{op="swap_in"} 1`,
		`objectswap_swap_phase_seconds_bucket{op="swap_out",phase="ship",le=`,
		`objectswap_swap_phase_bytes_total{op="swap_in",phase="fetch"}`,
		// transport
		`objectswap_transport_attempts_total{device="neighbor"}`,
		`objectswap_transport_op_seconds_bucket{device="neighbor",le=`,
		// policy
		`objectswap_policy_evaluations_total`,
		// devctx
		`objectswap_devctx_memory_fraction`,
		`objectswap_devctx_link_up{device="neighbor"} 1`,
		// bus
		`objectswap_bus_published_total{topic="swap.out"} 1`,
		// exposition format markers
		"# TYPE objectswap_swap_seconds histogram",
		"# HELP objectswap_heap_used_bytes",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestScrapeDuringConcurrentSwaps races metric scrapes against live swap
// traffic: the registry's instruments must be safe to read mid-operation.
// Run under -race (check.sh does).
func TestScrapeDuringConcurrentSwaps(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20, DeviceName: "pda-race"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("neighbor", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	const chains = 4
	clusters := buildChains(t, sys, cls, chains, 5)

	stop := make(chan struct{})
	var scrapeErr error
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := sys.WriteMetrics(&b); err != nil {
				scrapeErr = err
				return
			}
			_ = sys.Report()
		}
	}()

	var wg sync.WaitGroup
	for i, cluster := range clusters {
		wg.Add(1)
		go func(i int, c ClusterID) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				if _, err := sys.SwapOut(c); err != nil {
					t.Errorf("chain %d round %d swap-out: %v", i, round, err)
					return
				}
				if _, err := sys.SwapIn(c); err != nil {
					t.Errorf("chain %d round %d swap-in: %v", i, round, err)
					return
				}
			}
		}(i, cluster)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}

	if v, _ := sys.Metrics().Value("objectswap_swap_spans_total", "swap_out"); v != chains*10 {
		t.Fatalf("swap_out spans = %v, want %d", v, chains*10)
	}
	if v, _ := sys.Metrics().Value("objectswap_swap_spans_total", "swap_in"); v != chains*10 {
		t.Fatalf("swap_in spans = %v, want %d", v, chains*10)
	}
}
