package objectswap

import (
	"context"
	"errors"
	"sort"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/placement"
	"objectswap/internal/store"
)

// buildClusters allocates n single-object clusters on sys, rooted so they
// survive collection.
func buildClusters(t *testing.T, sys *System, cls *heap.Class, n int) []ClusterID {
	t.Helper()
	clusters := make([]ClusterID, n)
	for i := range clusters {
		clusters[i] = sys.NewCluster()
		o, err := sys.NewObject(cls, clusters[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SetField(o.RefTo(), "title", heap.Str("x")); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetRoot(string(rune('a'+i)), o.RefTo()); err != nil {
			t.Fatal(err)
		}
	}
	return clusters
}

func TestSystemFailoverBreakerAndMetrics(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 1 << 20,
		// Pin the device name so storage keys — and with them the planner's
		// rendezvous ranking of the two donors — are reproducible.
		DeviceName: "fo-sys",
		// One attempt per op, breaker trips on the first failure, no timeout
		// machinery: the test exercises routing, not waiting.
		Transport: TransportPolicy{MaxAttempts: 1, BreakerThreshold: 1, OpTimeout: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first swap-out (cluster 1) mints key fo-sys-swapcluster-1-gen1;
	// fault whichever donor the planner ranks first for it.
	names := []string{"donor-a", "donor-b"}
	order := placement.Order("fo-sys-swapcluster-1-gen1", names)
	badName, goodName := order[0], order[1]
	flaky := store.NewFlaky(store.NewMem(0), 1)
	flaky.FailNext(store.OpPut, -1)
	if err := sys.AttachDevice(badName, flaky); err != nil {
		t.Fatal(err)
	}
	good := store.NewMem(0)
	if err := sys.AttachDevice(goodName, good); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 2)

	// First swap-out: the top-ranked donor rejects the shipment, the swap
	// fails over.
	ev, err := sys.SwapOut(clusters[0])
	if err != nil {
		t.Fatalf("swap-out with failover: %v", err)
	}
	if ev.Device != goodName || len(ev.Attempted) != 1 || ev.Attempted[0] != badName {
		t.Fatalf("event = %+v", ev)
	}

	snap := sys.TransportSnapshot()
	if snap.Failovers != 1 {
		t.Fatalf("failovers = %d", snap.Failovers)
	}
	bad := snap.Devices[badName]
	if bad.BreakerTrips != 1 || !bad.BreakerOpen || bad.Failovers != 1 {
		t.Fatalf("%s snapshot = %+v", badName, bad)
	}
	if snap.Devices[goodName].BytesOut == 0 {
		t.Fatal("no bytes accounted to the healthy device")
	}

	// The tripped breaker marked the donor unreachable, so the second
	// swap-out routes straight to the healthy one without a failover hop.
	putsBefore := flaky.Calls(store.OpPut)
	ev2, err := sys.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Device != goodName || len(ev2.Attempted) != 0 {
		t.Fatalf("second event = %+v", ev2)
	}
	if flaky.Calls(store.OpPut) != putsBefore {
		t.Fatal("breaker-open device still received shipments")
	}

	// Both clusters reload from the healthy device.
	sys.Collect()
	for _, c := range clusters {
		if _, err := sys.SwapIn(c); err != nil {
			t.Fatalf("swap-in %d: %v", c, err)
		}
	}
}

func TestSystemSwapOptions(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20, DeviceName: "opt-sys",
		Transport: TransportPolicy{MaxAttempts: 1, OpTimeout: -1}})
	if err != nil {
		t.Fatal(err)
	}
	// Fault whichever donor the planner ranks first for the first swap-out's
	// key, so fail-fast shipment hits the faulty donor.
	names := []string{"donor-a", "donor-b"}
	order := placement.Order("opt-sys-swapcluster-1-gen1", names)
	badName, goodName := order[0], order[1]
	flaky := store.NewFlaky(store.NewMem(0), 1)
	flaky.FailNext(store.OpPut, -1)
	if err := sys.AttachDevice(badName, flaky); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice(goodName, store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 2)

	// WithNoFailover restores fail-fast shipment.
	if _, err := sys.SwapOut(clusters[0], WithNoFailover()); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("no-failover err = %v", err)
	}

	// WithDevice pins the destination past the planner's first choice.
	ev, err := sys.SwapOut(clusters[0], WithDevice(goodName))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Device != goodName || len(ev.Attempted) != 0 {
		t.Fatalf("pinned event = %+v", ev)
	}

	// WithContext: an already-canceled swap does nothing.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.SwapOut(clusters[1], WithContext(cctx)); err == nil {
		t.Fatal("canceled swap-out succeeded")
	}
}

func TestPublishTransportSnapshot(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}

	var published []TransportSnapshot
	sys.Bus().Subscribe(event.TopicTransportSnapshot, func(ev event.Event) {
		if s, ok := ev.Payload.(TransportSnapshot); ok {
			published = append(published, s)
		}
	})

	snap := sys.PublishTransportSnapshot()
	if len(published) != 1 {
		t.Fatalf("published %d snapshots", len(published))
	}
	if published[0].Attempts != snap.Attempts {
		t.Fatal("published snapshot differs from the returned one")
	}
	if _, ok := snap.Devices["desktop"]; !ok {
		t.Fatalf("snapshot devices = %v", snap.Devices)
	}
}

// mapStore is a minimal third-party store that predates the context API.
type mapStore struct{ m map[string][]byte }

func (s *mapStore) Put(key string, data []byte) error {
	s.m[key] = append([]byte(nil), data...)
	return nil
}

func (s *mapStore) Get(key string) ([]byte, error) {
	d, ok := s.m[key]
	if !ok {
		return nil, store.ErrNotFound
	}
	return d, nil
}

func (s *mapStore) Drop(key string) error {
	if _, ok := s.m[key]; !ok {
		return store.ErrNotFound
	}
	delete(s.m, key)
	return nil
}

func (s *mapStore) Keys() ([]string, error) {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

func (s *mapStore) Stats() (store.Stats, error) {
	var used int64
	for _, d := range s.m {
		used += int64(len(d))
	}
	return store.Stats{Items: len(s.m), Used: used}, nil
}

func TestAttachLegacyDevice(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	legacy := &mapStore{m: make(map[string][]byte)}
	if err := sys.AttachLegacyDevice("old-pda", legacy); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 1)

	ev, err := sys.SwapOut(clusters[0])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Device != "old-pda" {
		t.Fatalf("shipped to %q", ev.Device)
	}
	if _, ok := legacy.m[ev.Key]; !ok {
		t.Fatal("payload never reached the legacy store")
	}
	if _, err := sys.SwapIn(clusters[0]); err != nil {
		t.Fatal(err)
	}
	if len(legacy.m) != 0 {
		t.Fatal("stale copy left on the legacy store after reload")
	}
}

func TestProbeDevicesRecoversBreakerOpenDevice(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 1 << 20,
		DeviceName:   "probe-sys",
		Transport:    TransportPolicy{MaxAttempts: 1, BreakerThreshold: 1, OpTimeout: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The final swap-out (cluster 2, second key minted) must re-select the
	// recovered donor, so make the dead one whichever the planner ranks
	// first for that key.
	names := []string{"donor-a", "donor-b"}
	order := placement.Order("probe-sys-swapcluster-2-gen2", names)
	deadName, goodName := order[0], order[1]
	dead := store.NewFlaky(store.NewMem(0), 1)
	dead.FailNext(store.OpPut, -1)
	dead.FailNext(store.OpStats, -1) // the whole link is down
	if err := sys.AttachDevice(deadName, dead); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice(goodName, store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 2)

	// The ranking probe trips the dead donor's breaker; the swap lands on
	// the healthy one without a Put ever reaching the dead device.
	if _, err := sys.SwapOut(clusters[0]); err != nil {
		t.Fatal(err)
	}
	if !sys.TransportSnapshot().Devices[deadName].BreakerOpen {
		t.Fatal("breaker not open after failed selection probe")
	}

	// While the device is down, probing reports nothing recovered.
	if got := sys.ProbeDevices(context.Background()); len(got) != 0 {
		t.Fatalf("probe of dead device recovered %v", got)
	}

	// The link comes back: one sweep closes the breaker and restores the
	// device to selection.
	dead.FailNext(store.OpPut, 0)
	dead.FailNext(store.OpStats, 0)
	got := sys.ProbeDevices(context.Background())
	if len(got) != 1 || got[0] != deadName {
		t.Fatalf("recovered = %v", got)
	}
	if sys.TransportSnapshot().Devices[deadName].BreakerOpen {
		t.Fatal("breaker still open after recovery sweep")
	}
	ev, err := sys.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if ev.Device != deadName {
		t.Fatalf("recovered device not selected again (shipped to %q)", ev.Device)
	}
}
