// Package objectswap is a Go implementation of Object-Swapping for
// resource-constrained devices, reproducing Veiga & Ferreira's OBIWAN
// middleware extension (ICDCS 2007).
//
// A System bundles one constrained device's middleware stack: a
// byte-accounted managed heap, the swapping runtime (swap-clusters,
// swap-cluster-proxies, replacement-objects), a nearby-device registry, the
// memory and connectivity monitors, and an XML-policy engine that turns
// memory pressure into swap-outs.
//
// Quick start:
//
//	sys, _ := objectswap.New(objectswap.Config{HeapCapacity: 1 << 20})
//	sys.AttachDevice("desktop-pc", store.NewMem(0))
//
//	node := heap.NewClass("Node", heap.FieldDef{Name: "next", Kind: heap.KindRef})
//	node.AddMethod("next", func(c *heap.Call) ([]heap.Value, error) { ... })
//	sys.MustRegisterClass(node)
//
//	cluster := sys.NewCluster()
//	obj, _ := sys.NewObject(node, cluster)
//	_ = sys.SetRoot("head", obj.RefTo())
//	...
//	sys.SwapOut(cluster)    // or let the policy engine decide
//
// The exported sub-APIs remain available for advanced use: System.Runtime
// (core), System.Devices (store registry), System.Engine (policy engine),
// System.Bus (events).
package objectswap

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"objectswap/internal/core"
	"objectswap/internal/devctx"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/opshttp"
	"objectswap/internal/placement"
	"objectswap/internal/policy"
	"objectswap/internal/replication"
	"objectswap/internal/store"
	"objectswap/internal/telemetry"
	"objectswap/internal/transport"
	"objectswap/internal/txn"
)

// Re-exported identifier types, so the façade is usable without importing
// internal packages directly.
type (
	// ClusterID names a swap-cluster (0 is the never-swapped root cluster).
	ClusterID = core.ClusterID
	// SwapEvent describes a completed swap operation.
	SwapEvent = core.SwapEvent
	// ClusterInfo snapshots one swap-cluster's state.
	ClusterInfo = core.ClusterInfo
	// VictimStrategy orders eviction candidates.
	VictimStrategy = core.VictimStrategy
	// SwapOption tunes one SwapOut / SwapIn call (deadline, destination,
	// failover behavior).
	SwapOption = core.SwapOption
	// EvictOptions tunes an eviction pass (victim strategy, parallelism).
	EvictOptions = core.EvictOptions
	// TransportPolicy bounds the resilience decorator wrapped around every
	// attached device: per-operation timeouts, retry/backoff, circuit
	// breaker.
	TransportPolicy = transport.Policy
	// TransportSnapshot is the aggregate transport-metrics view.
	TransportSnapshot = transport.Snapshot
	// MetricsRegistry is the observability registry every layer reports into.
	MetricsRegistry = obs.Registry
	// Clock is the time source driving all observability timings.
	Clock = obs.Clock
	// Logger is the structured leveled logger threaded through the layers
	// (construct with internal/obs/log.New).
	Logger = olog.Logger
	// FlightRecorder retains the last completed swap spans and bus events.
	FlightRecorder = obs.Recorder
	// HealthCheck is one named subsystem probe served on /healthz.
	HealthCheck = opshttp.Check
)

// Swap options, re-exported from the runtime layer.
var (
	// WithContext runs the swap under a caller context.
	WithContext = core.WithContext
	// WithDeadline bounds the whole swap operation in absolute time.
	WithDeadline = core.WithDeadline
	// WithTimeout bounds the whole swap operation relative to now.
	WithTimeout = core.WithTimeout
	// WithDevice pins the swap-out destination to a named device.
	WithDevice = core.WithDevice
	// WithNoFailover restores fail-fast shipment (no multi-device retry).
	WithNoFailover = core.WithNoFailover
	// WithReplicas overrides the replication factor for one swap-out: the
	// payload ships to K rendezvous-ranked donors and commits once a write
	// quorum (majority of K) lands.
	WithReplicas = core.WithReplicas
)

// Victim strategies, re-exported.
const (
	VictimColdest   = core.VictimColdest
	VictimLargest   = core.VictimLargest
	VictimLeastUsed = core.VictimLeastUsed
)

// RootCluster is swap-cluster-0: global variables and static state.
const RootCluster = core.RootCluster

// ErrClusterBusy reports a cluster already mid-swap on another goroutine;
// concurrent SwapOut / SwapIn callers should skip it or retry later.
var ErrClusterBusy = core.ErrClusterBusy

// Config parameterizes a System.
type Config struct {
	// HeapCapacity is the device's byte budget (0 = unlimited, which
	// disables pressure-driven swapping but keeps explicit swapping).
	HeapCapacity int64
	// MemoryThreshold is the occupancy fraction that fires the memory
	// monitor (default 0.8).
	MemoryThreshold float64
	// Policies is an XML policy document to load; when empty, the default
	// swap-coldest-on-pressure machine policy is installed.
	Policies []byte
	// DeviceSelection picks swap-out destinations (default most-free).
	DeviceSelection store.SelectStrategy
	// KeepOnReload retains device copies after swap-in (for versioning
	// scenarios).
	KeepOnReload bool
	// DeviceName namespaces this device's storage keys on shared stores
	// (default: a process-unique name).
	DeviceName string
	// Replicas is the default replication factor for swap-outs: each shipped
	// cluster lands on K rendezvous-ranked donor devices (weighted by free
	// capacity) and commits once a write quorum (majority of K) lands.
	// Values <= 1 keep single-copy placement. With Replicas > 1 the System
	// also runs a background re-replication loop that re-ships
	// under-replicated clusters when donors fail (breaker-open, link-down,
	// device removal, or a swap-in falling through a dead replica); call
	// Close to stop it.
	Replicas int
	// Transport tunes the resilience decorator (timeouts, retry/backoff,
	// circuit breaker) wrapped around every store registered with
	// AttachDevice. The zero value selects the defaults; see
	// TransportPolicy. Use AttachDeviceRaw to bypass the decorator.
	Transport TransportPolicy
	// EvictParallelism > 1 makes pressure-driven eviction swap out up to
	// that many victim clusters concurrently, overlapping the XML encoding
	// of one cluster with the device shipment of another. 0 or 1 keeps the
	// sequential one-victim-then-collect evictor.
	EvictParallelism int
	// Shards is the number of independently locked swap shards in the core:
	// swaps on clusters hashed to different shards reserve and commit without
	// contending. 0 selects the default (core.DefaultShards); 1 restores a
	// single global swap lock (useful as a benchmark control).
	Shards int
	// Clock is the time source for all observability timings — event
	// timestamps, swap-phase durations, GC pauses, transport latencies
	// (default: the wall clock). Inject obs.NewVirtualClock in tests for
	// deterministic timings.
	Clock obs.Clock
	// Logger receives structured records from every layer: swap outcomes,
	// transport retries and breaker transitions, policy action outcomes,
	// memory threshold edges and link changes. Nil logs nothing.
	Logger *olog.Logger
	// FlightSpans / FlightEvents size the flight recorder's span and bus-event
	// rings (0 = defaults, 256 and 512; negative disables the recorder).
	FlightSpans  int
	FlightEvents int
	// WireFormats is the shipment-format preference order negotiated with the
	// donors on each swap-out (see internal/wire for the registered formats:
	// "binary", "binary+flate", "delta", "xml"). Empty selects the default,
	// binary with XML fallback; XML is always the implicit last resort, so a
	// neighborhood of pre-negotiation donors behaves exactly as before.
	// Listing "delta" additionally enables dirty-only re-shipment: a reloaded
	// cluster's full shipment stays on its donors as a base and later
	// swap-outs ship only the objects written since — note this retains
	// payloads on donors across reloads, like KeepOnReload but bounded to one
	// base per cluster.
	WireFormats []string
	// Prefetch enables the graph-driven prefetcher in the asynchronous fault
	// engine: after every demand swap-in, the top-Depth neighbor clusters by
	// replacement-object edge count are speculatively swapped in by Workers
	// background goroutines, gated by the memory monitor (no speculation
	// while the heap sits over threshold). The zero value disables
	// prefetching; coalescing and donor batching are always on.
	Prefetch PrefetchConfig
	// LeaseRenewEvery starts a background loop renewing the storage leases of
	// every swapped cluster's payload (and delta base) on its donors each
	// period, so lease-GC'ing donors (swapstore -lease-ttl) keep live
	// payloads and archive only orphans. Pick a period well under the donors'
	// TTL — a third or less. Zero disables the loop; call Close to stop it.
	LeaseRenewEvery time.Duration
}

// PrefetchConfig tunes the fault engine's speculative swap-in.
type PrefetchConfig struct {
	// Depth is how many neighbor clusters to consider after each demand
	// fault (0 disables prefetching).
	Depth int
	// Workers is the background swap-in pool size (default 2).
	Workers int
}

// System is the assembled middleware stack of one constrained device.
type System struct {
	heap    *heap.Heap
	rt      *core.Runtime
	bus     *event.Bus
	devices *store.Registry
	monitor *devctx.MemoryMonitor
	conn    *devctx.ConnectivityMonitor
	context *devctx.Context
	engine  *policy.Engine

	transportPol TransportPolicy
	metrics      *transport.Metrics
	obsReg       *obs.Registry
	recorder     *obs.Recorder
	logger       *olog.Logger
	repairer     *placement.Repairer
	telem        *telemetry.Tracker

	leaseEvery time.Duration
	leaseStop  chan struct{}
	leaseDone  chan struct{}
}

// New assembles a System from cfg. Every layer reports into one shared
// observability registry — the spine exposed by Metrics / WriteMetrics.
func New(cfg Config) (*System, error) {
	reg := obs.NewRegistry(cfg.Clock)
	h := heap.New(cfg.HeapCapacity)
	// Host code builds graphs through Go references; give fresh objects a
	// nursery grace so a policy-triggered collection between allocation and
	// rooting cannot reclaim them.
	h.SetNurseryGrace(2)
	var recorder *obs.Recorder
	if cfg.FlightSpans >= 0 && cfg.FlightEvents >= 0 {
		recorder = obs.NewRecorder(cfg.FlightSpans, cfg.FlightEvents)
	}
	bus := event.NewBus(event.WithClock(reg.Clock()), event.WithRegistry(reg),
		event.WithFlightRecorder(recorder))
	devices := store.NewRegistry(cfg.DeviceSelection)

	// Ring overwrites surface as objectswap_flight_dropped_total{kind}.
	recorder.Instrument(reg)
	// The access-telemetry plane: cluster heat, working-set estimation,
	// fault attribution and thrash scoring, driven by the registry clock.
	telem := telemetry.New(reg, telemetry.Options{})

	opts := []core.Option{core.WithStores(devices), core.WithBus(bus), core.WithObs(reg),
		core.WithFlightRecorder(recorder), core.WithLogger(cfg.Logger),
		core.WithTelemetry(telem)}
	if cfg.KeepOnReload {
		opts = append(opts, core.WithKeepOnReload())
	}
	if cfg.DeviceName != "" {
		opts = append(opts, core.WithName(cfg.DeviceName))
	}
	if cfg.Replicas > 1 {
		opts = append(opts, core.WithDefaultReplicas(cfg.Replicas))
	}
	if len(cfg.WireFormats) > 0 {
		opts = append(opts, core.WithWireFormats(cfg.WireFormats...))
	}
	if cfg.Shards > 0 {
		opts = append(opts, core.WithShards(cfg.Shards))
	}
	if cfg.Prefetch.Depth > 0 {
		opts = append(opts, core.WithPrefetch(cfg.Prefetch.Depth, cfg.Prefetch.Workers))
	}
	rt := core.NewRuntime(h, heap.NewRegistry(), opts...)
	h.Instrument(reg, rt.Name())
	// WSS samples measure each touched cluster at seal time: resident bytes
	// while loaded, last shipped payload size while swapped out. The
	// callback takes core locks, which is safe — the tracker only invokes
	// it from read paths (scrapes, endpoints) that hold none.
	telem.SetSizeOf(func(cluster uint32) int64 {
		info, err := rt.Manager().Info(core.ClusterID(cluster))
		if err != nil {
			return 0
		}
		if info.Swapped {
			return int64(info.PayloadBytes)
		}
		return info.ResidentBytes
	})

	conn := devctx.NewConnectivityMonitor(bus, devices)
	conn.Instrument(reg)
	conn.SetLogger(cfg.Logger)
	ctx := devctx.NewContext(h, conn)
	// Surface the telemetry plane in policy snapshots so rules can condition
	// on heat class counts, working-set size and thrash (e.g. "swap out only
	// while heat.cold > 0"). ThrashScore is the pure read — the hysteresis
	// state machine is only stepped by the health check and /debug/heat.
	ctx.RegisterMetric("heat.hot", func() float64 { hot, _, _ := telem.Counts(); return float64(hot) })
	ctx.RegisterMetric("heat.warm", func() float64 { _, warm, _ := telem.Counts(); return float64(warm) })
	ctx.RegisterMetric("heat.cold", func() float64 { _, _, cold := telem.Counts(); return float64(cold) })
	ctx.RegisterMetric("thrash.score", func() float64 { return telem.ThrashScore() })
	ctx.RegisterMetric("wss.clusters", func() float64 { c, _ := telem.WSS(0); return float64(c) })
	ctx.RegisterMetric("wss.bytes", func() float64 { _, b := telem.WSS(0); return float64(b) })
	engine := policy.NewEngine(bus, ctx)
	engine.Instrument(reg)
	engine.SetLogger(cfg.Logger)
	policy.BindSwapActions(engine, rt)
	if cfg.EvictParallelism > 1 {
		rt.SetEvictor(rt.EvictorWith(core.EvictOptions{Parallelism: cfg.EvictParallelism}))
	}

	doc := cfg.Policies
	if len(doc) == 0 {
		doc = []byte(policy.DefaultSwapPolicy)
	}
	if err := engine.Load(doc); err != nil {
		return nil, fmt.Errorf("objectswap: load policies: %w", err)
	}

	metrics := transport.NewMetricsWith(reg)
	// Every failed destination on a swap-out's failover trail counts as one
	// failover in the transport metrics.
	bus.Subscribe(event.TopicSwapOut, func(ev event.Event) {
		if e, ok := ev.Payload.(core.SwapEvent); ok {
			for _, d := range e.Attempted {
				metrics.AddFailover(d)
			}
		}
	})

	monitor := devctx.NewMemoryMonitor(h, bus, cfg.MemoryThreshold)
	monitor.Instrument(reg)
	monitor.SetLogger(cfg.Logger)
	// Pressure-gate speculation: the prefetcher asks before every background
	// swap-in and stands down while the heap sits at or over the monitor's
	// threshold, so prefetch can never be the thing that trips eviction.
	rt.FaultEngine().SetAdmit(func() bool {
		sample := monitor.Sample()
		return sample.Capacity <= 0 || sample.Fraction < monitor.Threshold()
	})

	var repairer *placement.Repairer
	if cfg.Replicas > 1 {
		repairer = placement.NewRepairer(repairTarget{rt}, cfg.Replicas,
			placement.RepairerOptions{Bus: bus, Obs: reg, Logger: cfg.Logger})
		repairer.Start()
	}

	sys := &System{
		heap:         h,
		rt:           rt,
		bus:          bus,
		devices:      devices,
		monitor:      monitor,
		conn:         conn,
		context:      ctx,
		engine:       engine,
		transportPol: cfg.Transport,
		metrics:      metrics,
		obsReg:       reg,
		recorder:     recorder,
		logger:       cfg.Logger,
		repairer:     repairer,
		telem:        telem,
		leaseEvery:   cfg.LeaseRenewEvery,
	}
	if sys.leaseEvery > 0 {
		sys.leaseStop = make(chan struct{})
		sys.leaseDone = make(chan struct{})
		go sys.leaseLoop()
	}
	return sys, nil
}

// leaseLoop renews swapped-cluster leases every Config.LeaseRenewEvery until
// Close. Renewal errors are swallowed here — a donor that is briefly down
// misses one round and catches the next; a donor without lease support is
// skipped permanently by RenewLeasesNow.
func (s *System) leaseLoop() {
	defer close(s.leaseDone)
	ticker := time.NewTicker(s.leaseEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.leaseStop:
			return
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(context.Background(), s.leaseEvery)
			s.RenewLeasesNow(ctx)
			cancel()
		}
	}
}

// RenewLeasesNow walks every swapped cluster once and renews the lease on its
// payload key — and its delta base key, when one is retained — on each donor
// device holding a copy. Donors that do not support leases (no swapstore
// -lease-ttl, plain stores) are skipped silently; the count of successful
// per-key renewals is returned. The background loop (Config.LeaseRenewEvery)
// calls this on a timer; call it directly before a planned disconnection.
func (s *System) RenewLeasesNow(ctx context.Context) int {
	renewed := 0
	for _, info := range s.rt.Manager().InfoAll() {
		if !info.Swapped && info.BaseKey == "" {
			continue
		}
		keys := make([]string, 0, 2)
		if info.Swapped && info.Key != "" {
			keys = append(keys, info.Key)
		}
		if info.BaseKey != "" && info.BaseKey != info.Key {
			keys = append(keys, info.BaseKey)
		}
		for _, d := range info.Devices {
			st, ok := s.devices.Peek(d)
			if !ok {
				continue
			}
			l, ok := st.(store.Leaser)
			if !ok {
				continue
			}
			for _, key := range keys {
				// TTL 0 asks the donor for its configured default.
				if err := l.RenewLease(ctx, key, 0); err == nil {
					renewed++
				}
			}
		}
	}
	return renewed
}

// repairTarget adapts core.Runtime to placement.RepairTarget: cluster ids are
// surfaced as raw uint32s, and the runtime conditions that mean "nothing to do
// right now" — mid-swap on another goroutine, reloaded since the sweep, or
// already fully replicated — collapse into placement.ErrSkip.
type repairTarget struct{ rt *core.Runtime }

func (t repairTarget) UnderReplicated(k int) []uint32 {
	ids := t.rt.UnderReplicated(k)
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}

func (t repairTarget) RepairCluster(ctx context.Context, cluster uint32, k int) error {
	_, err := t.rt.RepairCluster(ctx, core.ClusterID(cluster), k)
	if errors.Is(err, core.ErrClusterBusy) || errors.Is(err, core.ErrClusterLoaded) ||
		errors.Is(err, core.ErrNoRepair) {
		return fmt.Errorf("%w: %v", placement.ErrSkip, err)
	}
	return err
}

// RepairNow synchronously sweeps every under-replicated cluster once,
// re-shipping each toward Config.Replicas live copies, and returns how many
// clusters were repaired. With Replicas <= 1 it reports (0, nil) — there is
// no repair loop to run. Use it in tests and drain points; during normal
// operation the background loop reacts to failure events on its own.
func (s *System) RepairNow(ctx context.Context) (int, error) {
	if s.repairer == nil {
		return 0, nil
	}
	return s.repairer.RepairNow(ctx)
}

// Close stops the System's background work: the re-replication loop, the
// lease-renewal loop and the fault engine's prefetch workers. It is safe to
// call multiple times and on systems without any of them.
func (s *System) Close() {
	if s.repairer != nil {
		s.repairer.Close()
	}
	if s.leaseStop != nil {
		select {
		case <-s.leaseStop:
			// already closed by an earlier Close
		default:
			close(s.leaseStop)
		}
		<-s.leaseDone
	}
	s.rt.FaultEngine().Stop()
}

// DetachDevice removes a nearby device from the registry and announces the
// removal on the bus (topic device.removed) so the re-replication loop
// re-ships any clusters that held replicas on it. Swapped payloads on the
// device are not fetched back first — replicated clusters survive through
// their remaining copies; single-copy clusters on the device become
// unrecoverable until it is re-attached.
func (s *System) DetachDevice(name string) error {
	if _, ok := s.devices.Peek(name); !ok {
		return fmt.Errorf("objectswap: detach %q: %w", name, store.ErrNoDevice)
	}
	s.devices.Remove(name)
	s.conn.Set(name, false)
	s.bus.Emit(event.TopicDeviceRemoved, name)
	return nil
}

// Metrics exposes the shared observability registry: every layer — heap,
// swap runtime, event bus, transport, policy engine, device monitors —
// reports into it.
func (s *System) Metrics() *obs.Registry { return s.obsReg }

// WriteMetrics renders the full metrics page in the Prometheus text
// exposition format (version 0.0.4).
func (s *System) WriteMetrics(w io.Writer) error { return s.obsReg.WriteMetrics(w) }

// FlightRecorder exposes the always-on flight recorder retaining the last
// completed swap spans and bus events (nil when disabled via negative
// Config.FlightSpans / FlightEvents).
func (s *System) FlightRecorder() *obs.Recorder { return s.recorder }

// evictorStuckAfter is how long one in-flight eviction pass may run before
// the evictor health check reports it wedged.
const evictorStuckAfter = 30 * time.Second

// HealthChecks returns the system's standard subsystem probes, suitable for
// opshttp.Options.Checks:
//
//	heap             fails when occupancy has crossed the memory monitor's
//	                 threshold
//	breakers         fails when any attached device's circuit breaker is open
//	stores           fails when devices are attached but none is reachable
//	evictor          fails when no evictor hook is installed, or one eviction
//	                 pass has been in flight implausibly long
//	underreplicated  (Replicas > 1 only) fails while any swapped cluster has
//	                 fewer live replicas than Config.Replicas — degraded on
//	                 donor loss, ok again once the repair loop restores the
//	                 factor
func (s *System) HealthChecks() []opshttp.Check {
	checks := []opshttp.Check{
		{Name: "heap", Probe: func(context.Context) error {
			sample := s.monitor.Sample()
			if sample.Capacity > 0 && sample.Fraction >= s.monitor.Threshold() {
				return fmt.Errorf("heap at %.0f%% (threshold %.0f%%)",
					sample.Fraction*100, s.monitor.Threshold()*100)
			}
			return nil
		}},
		{Name: "breakers", Probe: func(context.Context) error {
			var open []string
			for _, name := range s.devices.Names() {
				if st, ok := s.devices.Peek(name); ok {
					if res, ok := st.(*transport.Resilient); ok && res.BreakerOpen() {
						open = append(open, name)
					}
				}
			}
			if len(open) > 0 {
				return fmt.Errorf("circuit breaker open: %s", strings.Join(open, ", "))
			}
			return nil
		}},
		{Name: "stores", Probe: func(context.Context) error {
			names := s.devices.Names()
			if len(names) == 0 {
				return nil // a store-less system is valid (no swapping)
			}
			for _, name := range names {
				if s.conn.Up(name) {
					return nil
				}
			}
			return fmt.Errorf("no reachable device (%d attached)", len(names))
		}},
		{Name: "evictor", Probe: func(context.Context) error {
			if !s.rt.HasEvictor() {
				return errors.New("no evictor installed")
			}
			// Eviction liveness is tracked per swap shard: a pass wedged on
			// one shard's victim is reported by shard index while its
			// siblings keep evicting. The pass-level timestamp is the
			// fallback for a pass stuck before it reached any victim.
			now := s.obsReg.Clock().Now()
			for _, se := range s.rt.ShardEvictions() {
				if age := now.Sub(se.Since); age > evictorStuckAfter {
					return fmt.Errorf("eviction on shard %d in flight for %s", se.Shard, age)
				}
			}
			if since, running := s.rt.EvictingSince(); running {
				if age := now.Sub(since); age > evictorStuckAfter {
					return fmt.Errorf("eviction pass in flight for %s (no shard progress)", age)
				}
			}
			return nil
		}},
	}
	checks = append(checks, opshttp.Check{Name: "thrash", Probe: func(context.Context) error {
		// Degrades while the telemetry plane sees sustained swap ping-pong
		// (swap-ins landing right after swap-outs of the same cluster);
		// recovers once the decayed score falls below the low-water mark.
		return s.telem.HealthCheck()
	}})
	if s.rt.Replicas() > 1 {
		checks = append(checks, opshttp.Check{Name: "underreplicated", Probe: func(context.Context) error {
			if under := s.rt.UnderReplicated(0); len(under) > 0 {
				return fmt.Errorf("%d cluster(s) below %d live replicas", len(under), s.rt.Replicas())
			}
			return nil
		}})
	}
	return checks
}

// OpsHandler assembles the operator-facing HTTP surface for this system:
// /metrics, /healthz (HealthChecks), /debug/traces, /debug/events,
// /debug/heat, /debug/wss, /debug/prefetch and /debug/pprof. Mount it on a
// side port via
// opshttp.Start (the obiswap command's -ops flag does exactly this).
func (s *System) OpsHandler() http.Handler {
	return opshttp.NewHandler(opshttp.Options{
		Metrics:   s.obsReg,
		Recorder:  s.recorder,
		Checks:    s.HealthChecks(),
		Logger:    s.logger,
		Telemetry: s.telem,
		Prefetch:  s.rt.FaultEngine(),
	})
}

// Runtime exposes the swapping runtime.
func (s *System) Runtime() *core.Runtime { return s.rt }

// Telemetry exposes the access-telemetry plane: cluster heat, working-set
// estimation, fault attribution and thrash scoring.
func (s *System) Telemetry() *telemetry.Tracker { return s.telem }

// Heap exposes the device heap.
func (s *System) Heap() *heap.Heap { return s.heap }

// Bus exposes the middleware event bus.
func (s *System) Bus() *event.Bus { return s.bus }

// Devices exposes the nearby-device registry.
func (s *System) Devices() *store.Registry { return s.devices }

// Engine exposes the policy engine.
func (s *System) Engine() *policy.Engine { return s.engine }

// Context exposes the metric provider (for custom policy metrics).
func (s *System) Context() *devctx.Context { return s.context }

// Monitor exposes the memory monitor.
func (s *System) Monitor() *devctx.MemoryMonitor { return s.monitor }

// AttachDevice registers a nearby device able to store swapped XML and marks
// it reachable. The store is wrapped in the transport resilience decorator
// (per-operation timeouts, bounded retry with backoff, a circuit breaker):
// breaker transitions feed the connectivity monitor — so the registry stops
// selecting an unhealthy device — and are published as
// transport.breaker.open / transport.breaker.close events.
func (s *System) AttachDevice(name string, st store.Store) error {
	res := transport.NewResilient(name, st, s.transportPol,
		transport.WithMetrics(s.metrics),
		transport.WithLogger(s.logger),
		transport.WithBreakerNotify(func(open bool) {
			s.conn.Set(name, !open)
			if open {
				s.bus.Emit(event.TopicBreakerOpen, name)
			} else {
				s.bus.Emit(event.TopicBreakerClose, name)
			}
		}))
	if err := s.devices.Add(name, res); err != nil {
		return err
	}
	s.conn.Set(name, true)
	return nil
}

// AttachDeviceRaw registers a nearby device without the transport resilience
// decorator: every store call reaches it directly, and a single failure
// surfaces to the swap path (which may still fail over across devices).
func (s *System) AttachDeviceRaw(name string, st store.Store) error {
	if err := s.devices.Add(name, st); err != nil {
		return err
	}
	s.conn.Set(name, true)
	return nil
}

// AttachLegacyDevice registers a third-party context-free store through the
// store.Legacy adapter, with the full resilience decoration.
func (s *System) AttachLegacyDevice(name string, st store.ContextFree) error {
	return s.AttachDevice(name, store.NewLegacy(st))
}

// TransportSnapshot copies the aggregate transport metrics: attempts,
// retries, failovers, breaker trips, bytes moved and mean per-operation
// latency, in total and per device.
func (s *System) TransportSnapshot() TransportSnapshot {
	return s.metrics.Snapshot()
}

// PublishTransportSnapshot emits the current transport metrics on the event
// bus (topic transport.snapshot) and returns them.
func (s *System) PublishTransportSnapshot() TransportSnapshot {
	snap := s.metrics.Snapshot()
	s.bus.Emit(event.TopicTransportSnapshot, snap)
	return snap
}

// ProbeDevices issues one direct health probe (a Stats round-trip through
// the resilience decorator, past the breaker gate) to every attached device
// whose circuit breaker is open, and returns the names of the devices that
// answered. A recovered device's breaker closes, the connectivity monitor
// marks it reachable, and transport.breaker.close / link.up events fire —
// so the registry resumes selecting it. Call this on whatever cadence the
// deployment's link dynamics suggest (or from a policy action); a
// breaker-open device receives no regular traffic, so nothing else can
// discover its recovery.
func (s *System) ProbeDevices(ctx context.Context) []string {
	var recovered []string
	for _, name := range s.devices.Names() {
		st, ok := s.devices.Peek(name)
		if !ok {
			continue
		}
		res, ok := st.(*transport.Resilient)
		if !ok || !res.BreakerOpen() {
			continue
		}
		if res.Probe(ctx) == nil {
			recovered = append(recovered, name)
		}
	}
	return recovered
}

// SetDeviceAvailable flips a device's reachability (connectivity change).
func (s *System) SetDeviceAvailable(name string, up bool) {
	s.conn.Set(name, up)
}

// RegisterClass registers an application class (and synthesizes its
// swap-cluster-proxy class).
func (s *System) RegisterClass(c *heap.Class) error { return s.rt.RegisterClass(c) }

// MustRegisterClass registers a class, panicking on error.
func (s *System) MustRegisterClass(c *heap.Class) *heap.Class { return s.rt.MustRegisterClass(c) }

// NewCluster declares a fresh swap-cluster.
func (s *System) NewCluster() ClusterID { return s.rt.Manager().NewCluster() }

// NewObject allocates an application object into a swap-cluster, checking
// the memory monitor afterwards so pressure policies run promptly.
func (s *System) NewObject(c *heap.Class, cluster ClusterID) (*heap.Object, error) {
	o, err := s.rt.NewObject(c, cluster)
	if err != nil {
		return nil, err
	}
	s.monitor.Check()
	return o, nil
}

// Invoke dispatches a method through the swapping-aware runtime.
func (s *System) Invoke(target heap.Value, method string, args ...heap.Value) ([]heap.Value, error) {
	return s.rt.Invoke(target, method, args...)
}

// Field reads a field through the swapping-aware runtime.
func (s *System) Field(target heap.Value, name string) (heap.Value, error) {
	return s.rt.Field(target, name)
}

// SetField writes a field through the swapping-aware runtime (references are
// re-mediated for the owning cluster). The monitor is checked afterwards as
// payload growth is an allocation too.
func (s *System) SetField(target heap.Value, name string, v heap.Value) error {
	if err := s.rt.SetFieldValue(target, name, v); err != nil {
		return err
	}
	s.monitor.Check()
	return nil
}

// SetRoot assigns a global variable (swap-cluster-0 state).
func (s *System) SetRoot(name string, v heap.Value) error { return s.rt.SetRoot(name, v) }

// Root reads a global variable.
func (s *System) Root(name string) (heap.Value, bool) { return s.rt.Root(name) }

// RefEqual compares two references for application-level identity across
// any mediating proxies.
func (s *System) RefEqual(a, b heap.Value) (bool, error) { return s.rt.RefEqual(a, b) }

// Assign enables the iteration optimization on a proxy reference.
func (s *System) Assign(v heap.Value) error { return s.rt.Assign(v) }

// AssignedCursor returns a self-patching cursor for iterating from v: each
// reference it yields (method return or field read) re-targets the same
// proxy instead of minting a new one per step — the paper's Section 4
// iteration optimization. Use it for long traversals on tight heaps.
func (s *System) AssignedCursor(v heap.Value) (heap.Value, error) {
	return s.rt.AssignedCursor(v)
}

// SwapOut detaches a swap-cluster to nearby devices. With no options the
// placement planner rendezvous-ranks the donors (weighted by free capacity)
// and ships Config.Replicas copies, extending past failed donors until a
// write quorum lands; WithDeadline bounds the operation, WithDevice pins a
// single destination, WithReplicas overrides the factor for this call,
// WithNoFailover confines shipment to the top-ranked donors (no extension).
func (s *System) SwapOut(cluster ClusterID, opts ...SwapOption) (SwapEvent, error) {
	return s.rt.SwapOut(cluster, opts...)
}

// SwapIn prefetches a swapped cluster back. WithDeadline / WithContext bound
// the fetch; a timed-out swap-in leaves the cluster consistently swapped.
func (s *System) SwapIn(cluster ClusterID, opts ...SwapOption) (SwapEvent, error) {
	return s.rt.SwapIn(cluster, opts...)
}

// SwapOutMany swaps out the given clusters through a bounded worker pool,
// overlapping the encoding of one cluster with the shipment of another.
// Clusters that are active, busy, already swapped or empty are skipped; the
// returned events cover the clusters actually shipped, in input order.
func (s *System) SwapOutMany(clusters []ClusterID, parallelism int, opts ...SwapOption) ([]SwapEvent, error) {
	return s.rt.SwapOutMany(clusters, parallelism, opts...)
}

// Evict frees at least need bytes under the given options: collect first,
// then swap out ranked victims (concurrently when o.Parallelism > 1).
func (s *System) Evict(o EvictOptions, need int64) error {
	return s.rt.EvictWith(o, need)
}

// Collect runs a swapping-integrated garbage collection.
func (s *System) Collect() heap.CollectStats { return s.rt.Collect() }

// MergeClusters folds cluster src into dst, adapting swap granularity at
// runtime (boundary proxies between them are dismantled).
func (s *System) MergeClusters(dst, src ClusterID) error { return s.rt.MergeClusters(dst, src) }

// SplitCluster moves the given objects of cluster src into a fresh cluster,
// mediating the new boundary, and returns the new cluster's id.
func (s *System) SplitCluster(src ClusterID, members []heap.ObjID) (ClusterID, error) {
	return s.rt.SplitCluster(src, members)
}

// Clusters snapshots every swap-cluster's state.
func (s *System) Clusters() []ClusterInfo { return s.rt.Manager().InfoAll() }

// ReplicateFrom attaches an incremental replicator pulling from a master
// node over the given transport; groupSize replication clusters form one
// swap-cluster.
func (s *System) ReplicateFrom(t replication.Transport, groupSize int) *replication.Replicator {
	return replication.Attach(s.rt, t, replication.WithGroupSize(groupSize))
}

// SaveCheckpoint persists the device's full middleware state (resident
// clusters, swapped-cluster locations, roots, placeholders) to w — the
// Persistence module of the OBIWAN architecture.
func (s *System) SaveCheckpoint(w io.Writer) error { return s.rt.SaveCheckpoint(w) }

// LoadCheckpoint restores a checkpoint into this (fresh) system. Clusters
// that were swapped out at save time come back as swapped and fault in from
// their devices on first touch.
func (s *System) LoadCheckpoint(r io.Reader) error { return s.rt.LoadCheckpoint(r) }

// Transactions returns a transaction manager over this system's runtime
// (OBIWAN's Transactional Support module): Begin/Set/Commit/Rollback with
// field-level undo that works across swap-outs.
func (s *System) Transactions() *txn.Manager { return txn.New(s.rt) }

// ErrNoRoot reports a missing named root.
var ErrNoRoot = errors.New("objectswap: no such root")

// MustRoot returns a named root or an error (convenience over Root).
func (s *System) MustRoot(name string) (heap.Value, error) {
	v, ok := s.Root(name)
	if !ok {
		return heap.Nil(), fmt.Errorf("%w: %q", ErrNoRoot, name)
	}
	return v, nil
}
