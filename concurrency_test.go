package objectswap

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"objectswap/internal/heap"
	"objectswap/internal/store"
)

// buildChains assembles n independent task chains, one swap-cluster each,
// rooted as chain-<i>, and returns the cluster ids.
func buildChains(t *testing.T, sys *System, cls *heap.Class, n, perChain int) []ClusterID {
	t.Helper()
	ids := make([]ClusterID, n)
	for i := 0; i < n; i++ {
		cluster := sys.NewCluster()
		ids[i] = cluster
		var prev *heap.Object
		for j := 0; j < perChain; j++ {
			o, err := sys.NewObject(cls, cluster)
			if err != nil {
				t.Fatalf("chain %d obj %d: %v", i, j, err)
			}
			title := fmt.Sprintf("chain-%d-task-%d", i, j)
			if err := sys.SetField(o.RefTo(), "title", heap.Str(title)); err != nil {
				t.Fatal(err)
			}
			if prev == nil {
				if err := sys.SetRoot(fmt.Sprintf("chain-%d", i), o.RefTo()); err != nil {
					t.Fatal(err)
				}
			} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
				t.Fatal(err)
			}
			prev = o
		}
	}
	return ids
}

// checkChains walks every chain through the facade and verifies each title
// (faulting swapped clusters back in as a side effect).
func checkChains(t *testing.T, sys *System, n, perChain int) {
	t.Helper()
	for i := 0; i < n; i++ {
		cur, err := sys.MustRoot(fmt.Sprintf("chain-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < perChain; j++ {
			out, err := sys.Invoke(cur, "title")
			if err != nil {
				t.Fatalf("chain %d task %d: %v", i, j, err)
			}
			if got, _ := out[0].Str(); got != fmt.Sprintf("chain-%d-task-%d", i, j) {
				t.Fatalf("chain %d task %d: title = %q", i, j, got)
			}
			if cur, err = sys.Field(cur, "next"); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConcurrentSwapThroughFacade swaps out, collects, and swaps back in
// several distinct clusters from concurrent goroutines through the public
// facade. Under -race this exercises the runtime's phase locking: cluster
// snapshot and commit serialize, while XML encoding and device shipment of
// different clusters overlap.
func TestConcurrentSwapThroughFacade(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	const chains, perChain = 8, 5
	clusters := buildChains(t, sys, cls, chains, perChain)

	var wg sync.WaitGroup
	for _, id := range clusters {
		wg.Add(1)
		go func(id ClusterID) {
			defer wg.Done()
			if _, err := sys.SwapOut(id); err != nil && !errors.Is(err, ErrClusterBusy) {
				t.Errorf("SwapOut(%d): %v", id, err)
			}
		}(id)
	}
	// A concurrent collection must coexist with in-flight swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sys.Collect()
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sys.Collect()
	for _, info := range sys.Clusters() {
		if info.ID != RootCluster && !info.Swapped {
			t.Fatalf("cluster %d not swapped: %+v", info.ID, info)
		}
	}

	for _, id := range clusters {
		wg.Add(1)
		go func(id ClusterID) {
			defer wg.Done()
			if _, err := sys.SwapIn(id); err != nil && !errors.Is(err, ErrClusterBusy) {
				t.Errorf("SwapIn(%d): %v", id, err)
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	checkChains(t, sys, chains, perChain)
}

// TestSwapOutManyFacade ships several clusters through the bounded worker
// pool and checks the Evict knob frees memory with parallel victims.
func TestSwapOutManyFacade(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	const chains, perChain = 6, 4
	clusters := buildChains(t, sys, cls, chains, perChain)

	evs, err := sys.SwapOutMany(clusters, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != chains {
		t.Fatalf("shipped %d clusters, want %d", len(evs), chains)
	}
	sys.Collect()
	checkChains(t, sys, chains, perChain)

	// Parallel eviction through the facade knob.
	used := sys.Heap().Used()
	if err := sys.Evict(EvictOptions{Parallelism: 3}, used/2); err != nil {
		t.Fatal(err)
	}
	if got := sys.Heap().Used(); got > used/2 {
		t.Fatalf("used = %d after evicting half of %d", got, used)
	}
	checkChains(t, sys, chains, perChain)
}

// TestEvictParallelismConfig verifies the Config knob installs a parallel
// evictor: allocation pressure on a tight heap still resolves.
func TestEvictParallelismConfig(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 6 << 10, EvictParallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())

	// Far more data than the heap holds: the parallel evictor must keep
	// making room as chains allocate.
	const chains, perChain = 12, 6
	clusters := buildChains(t, sys, cls, chains, perChain)
	if len(clusters) != chains {
		t.Fatalf("built %d chains", len(clusters))
	}
	swapped := 0
	for _, info := range sys.Clusters() {
		if info.Swapped {
			swapped++
		}
	}
	if swapped == 0 {
		t.Fatal("no cluster was evicted under pressure")
	}
	checkChains(t, sys, chains, perChain)
}
