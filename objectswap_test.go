package objectswap

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/replication"
	"objectswap/internal/store"
	"objectswap/internal/txn"
)

func taskClass() *heap.Class {
	c := heap.NewClass("Task",
		heap.FieldDef{Name: "title", Kind: heap.KindString},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
	)
	c.AddMethod("title", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("title")
		return []heap.Value{v}, nil
	})
	c.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
		v, _ := call.Self.FieldByName("next")
		return []heap.Value{v}, nil
	})
	return c
}

func TestSystemQuickstartFlow(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("desktop", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())

	cluster := sys.NewCluster()
	a, err := sys.NewObject(cls, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetField(a.RefTo(), "title", heap.Str("write paper")); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetRoot("todo", a.RefTo()); err != nil {
		t.Fatal(err)
	}

	// Explicit swap-out and transparent reload.
	ev, err := sys.SwapOut(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Objects != 1 {
		t.Fatalf("event = %+v", ev)
	}
	sys.Collect()
	root, err := sys.MustRoot("todo")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Invoke(root, "title")
	if err != nil {
		t.Fatal(err)
	}
	title, _ := out[0].Str()
	if title != "write paper" {
		t.Fatalf("title = %q", title)
	}

	// Identity and field reads through the façade.
	eq, err := sys.RefEqual(root, a.RefTo())
	if err != nil || !eq {
		t.Fatalf("RefEqual = %v, %v", eq, err)
	}
	v, err := sys.Field(root, "title")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.Str(); s != "write paper" {
		t.Fatalf("Field = %v", v)
	}
	infos := sys.Clusters()
	if len(infos) != 2 { // root + one
		t.Fatalf("clusters = %d", len(infos))
	}
	if _, err := sys.MustRoot("ghost"); !errors.Is(err, ErrNoRoot) {
		t.Fatalf("MustRoot ghost: %v", err)
	}
}

func TestSystemPressurePolicyEndToEnd(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 9216, MemoryThreshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	dev := store.NewMem(0)
	if err := sys.AttachDevice("neighbor", dev); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())

	var swaps []SwapEvent
	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		swaps = append(swaps, ev.Payload.(SwapEvent))
	})

	for c := 0; c < 8; c++ {
		cluster := sys.NewCluster()
		for i := 0; i < 6; i++ {
			o, err := sys.NewObject(cls, cluster)
			if err != nil {
				t.Fatalf("cluster %d obj %d: %v", c, i, err)
			}
			if err := sys.SetField(o.RefTo(), "title", heap.Str(fmt.Sprintf("t-%d-%d", c, i))); err != nil {
				t.Fatal(err)
			}
			if err := sys.SetRoot(fmt.Sprintf("r-%d-%d", c, i), o.RefTo()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(swaps) == 0 {
		t.Fatal("pressure policy never swapped")
	}
	if keys, _ := dev.Keys(context.Background()); len(keys) == 0 {
		t.Fatal("device holds nothing")
	}
	// Everything still readable.
	for c := 0; c < 8; c++ {
		for i := 0; i < 6; i++ {
			root, err := sys.MustRoot(fmt.Sprintf("r-%d-%d", c, i))
			if err != nil {
				t.Fatal(err)
			}
			out, err := sys.Invoke(root, "title")
			if err != nil {
				t.Fatalf("r-%d-%d: %v", c, i, err)
			}
			if s, _ := out[0].Str(); s != fmt.Sprintf("t-%d-%d", c, i) {
				t.Fatalf("r-%d-%d = %q", c, i, s)
			}
		}
	}
}

func TestSystemConnectivityGatesSwapping(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachDevice("pda", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	cluster := sys.NewCluster()
	o, _ := sys.NewObject(cls, cluster)
	_ = sys.SetRoot("x", o.RefTo())

	sys.SetDeviceAvailable("pda", false)
	if _, err := sys.SwapOut(cluster); !errors.Is(err, store.ErrNoDevice) {
		t.Fatalf("swap with no reachable device: %v", err)
	}
	sys.SetDeviceAvailable("pda", true)
	if _, err := sys.SwapOut(cluster); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SwapIn(cluster); err != nil {
		t.Fatal(err)
	}
}

func TestSystemCustomPoliciesAndErrors(t *testing.T) {
	if _, err := New(Config{Policies: []byte("}{")}); err == nil {
		t.Fatal("bad policy document accepted")
	}
	custom := `<policies>
  <policy name="never" category="user">
    <on event="memory.threshold"/>
    <when><gt left="heap.used.pct" right="200"/></when>
    <action do="swap-out"/>
  </policy>
</policies>`
	sys, err := New(Config{HeapCapacity: 4096, Policies: []byte(custom)})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Engine().Policies()); got != 1 {
		t.Fatalf("policies = %d", got)
	}
}

func TestSystemReplication(t *testing.T) {
	// Master side.
	reg := heap.NewRegistry()
	reg.MustRegister(taskClass())
	master := replication.NewMaster(reg, 5)
	cls, _ := reg.Lookup("Task")
	var prev *heap.Object
	for i := 0; i < 12; i++ {
		o, _ := master.Heap().New(cls)
		o.MustSet("title", heap.Str(fmt.Sprintf("m%d", i)))
		if prev == nil {
			master.Heap().SetRoot("inbox", o.RefTo())
		} else {
			prev.MustSet("next", o.RefTo())
		}
		prev = o
	}

	// Device side through the façade.
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.AttachDevice("neighbor", store.NewMem(0))
	sys.MustRegisterClass(taskClass())
	repl := sys.ReplicateFrom(master, 1)
	if _, err := repl.ReplicateRoot(context.Background(), "inbox"); err != nil {
		t.Fatal(err)
	}
	root, _ := sys.MustRoot("inbox")
	cur := root
	count := 0
	for !cur.IsNil() {
		out, err := sys.Invoke(cur, "title")
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := out[0].Str(); s != fmt.Sprintf("m%d", count) {
			t.Fatalf("item %d = %q", count, s)
		}
		next, err := sys.Field(cur, "next")
		if err != nil {
			t.Fatal(err)
		}
		cur = next
		count++
	}
	if count != 12 {
		t.Fatalf("replicated %d items", count)
	}
	if repl.StatsSnapshot().ClustersFetched < 2 {
		t.Fatalf("stats = %+v", repl.StatsSnapshot())
	}
}

func TestSystemMergeSplitAndTransactions(t *testing.T) {
	sys, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.AttachDevice("d", store.NewMem(0))
	cls := sys.MustRegisterClass(taskClass())

	a, b := sys.NewCluster(), sys.NewCluster()
	oa, _ := sys.NewObject(cls, a)
	ob, _ := sys.NewObject(cls, b)
	_ = sys.SetField(oa.RefTo(), "next", ob.RefTo())
	_ = sys.SetRoot("x", oa.RefTo())

	// Merge through the façade: the cross-cluster edge dismantles.
	if err := sys.MergeClusters(a, b); err != nil {
		t.Fatal(err)
	}
	nv, _ := oa.FieldByName("next")
	if nv.MustRef() != ob.ID() {
		t.Fatalf("edge not dismantled after merge: %v", nv)
	}
	// Split it back out.
	fresh, err := sys.SplitCluster(a, []heap.ObjID{ob.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == a {
		t.Fatal("split returned source cluster")
	}
	nv, _ = oa.FieldByName("next")
	if !sys.Runtime().IsProxyRef(nv) {
		t.Fatalf("edge not re-mediated after split: %v", nv)
	}

	// Transactions through the façade.
	tx := sys.Transactions()
	if err := tx.Run(func(m *txn.Manager) error {
		return m.Set(oa.RefTo(), "title", heap.Str("inside"))
	}); err != nil {
		t.Fatal(err)
	}
	v, _ := oa.FieldByName("title")
	if s, _ := v.Str(); s != "inside" {
		t.Fatalf("committed write lost: %q", s)
	}
}

func TestSystemReport(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20, DeviceName: "report-pda"})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys.AttachDevice("d", store.NewMem(0))
	cls := sys.MustRegisterClass(taskClass())
	c := sys.NewCluster()
	o, _ := sys.NewObject(cls, c)
	_ = sys.SetRoot("x", o.RefTo())
	if _, err := sys.SwapOut(c); err != nil {
		t.Fatal(err)
	}
	got := sys.Report()
	for _, want := range []string{
		`device "report-pda"`,
		"swap-clusters (2)",
		"0 (globals)",
		"swapped -> d",
		"shipments",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("report missing %q:\n%s", want, got)
		}
	}
	sys.SetDeviceAvailable("d", false)
	if !strings.Contains(sys.Report(), "unreachable") {
		t.Fatal("report does not show unreachable device")
	}
}
