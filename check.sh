#!/bin/sh
# Tier-1 verification entrypoint: static checks, formatting, build, tests,
# race tests, coverage on the observability spine, and a one-iteration
# benchmark smoke run (benchmarks must at least execute).
set -eux

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...
go test -cover ./internal/obs/ ./internal/core/ ./internal/opshttp/ ./internal/placement/
# Ops-surface smoke: a real listener on :0 must answer 200 on /metrics,
# /healthz, /debug/traces and /debug/events.
go test -run '^TestSmoke$' -count=1 ./internal/opshttp/
# Codec-bench smoke: the binary wire codec's decode/encode ns ratio must stay
# far below the XML baseline (~17.54, BENCH_codec.json) and within its
# allocation budget (BENCH_wire.json records the numbers).
go test -run '^TestCodecBenchSmoke$' -count=1 ./internal/wire/
go test -bench . -benchtime=1x -run '^$' ./...
