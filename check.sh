#!/bin/sh
# Tier-1 verification entrypoint: static checks, formatting, build, tests,
# race tests, coverage on the observability spine, and a one-iteration
# benchmark smoke run (benchmarks must at least execute).
set -eux

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./...
go test -cover ./internal/obs/ ./internal/core/ ./internal/opshttp/ ./internal/placement/ ./internal/telemetry/
# Ops-surface smoke: a real listener on :0 must answer 200 on /metrics,
# /healthz, /debug/traces, /debug/events, /debug/heat and /debug/wss.
go test -run '^TestSmoke$' -count=1 ./internal/opshttp/
# Exposition gate: the /metrics page must survive a strict Prometheus
# text-format parser — adversarial label values, histograms and the
# telemetry families included.
go test -run '^TestMetricsPageParses$' -count=1 ./internal/opshttp/
# Telemetry-consistency gate: heat ranking must agree with the coldest-first
# victim order, fault causes must be attributed, and the thrash health check
# must flip degraded and recover.
go test -run '^TestHeatRankingMatchesEvictionOrder$|^TestFaultCauseAttribution$|^TestThrashHealthFlips$' -count=1 .
# Codec-bench smoke: the binary wire codec's decode/encode ns ratio must stay
# far below the XML baseline (~17.54, BENCH_codec.json) and within its
# allocation budget (BENCH_wire.json records the numbers).
go test -run '^TestCodecBenchSmoke$' -count=1 ./internal/wire/
# Generate-drift gate: obicomp output must stay in sync with its schema
# sources — regenerating every //go:generate package must be a no-op.
BEFORE=$(find . -name '*_gen.go' -o -name '*_gen.xml' | sort | xargs sha256sum)
go generate ./...
AFTER=$(find . -name '*_gen.go' -o -name '*_gen.xml' | sort | xargs sha256sum)
if [ "$BEFORE" != "$AFTER" ]; then
    echo "obicomp output drifted from its sources (rerun go generate ./... and commit):" >&2
    echo "$BEFORE" >/tmp/obicomp-gen-before.$$
    echo "$AFTER" >/tmp/obicomp-gen-after.$$
    diff /tmp/obicomp-gen-before.$$ /tmp/obicomp-gen-after.$$ >&2 || true
    rm -f /tmp/obicomp-gen-before.$$ /tmp/obicomp-gen-after.$$
    exit 1
fi
# Generated-codec smoke: decoding through an obicomp codec must allocate
# strictly less than the generic path, and generated dispatch must not
# regress past the closure table it replaces (BENCH_obicomp.json records the
# numbers).
go test -run '^TestGenBenchSmoke$' -count=1 ./internal/schema/gentest/
# Shard-soak smoke: the sharded-core soak harness (control and default shard
# counts) must execute at GOMAXPROCS 1 and 4. Full figures: BENCH_shard.json.
go test -bench 'BenchmarkShardSoak' -benchtime=1x -cpu 1,4 -run '^$' .
# Guard: the sharded core must never ship hardcoded to a single shard. Only
# tests and the soak control may pin shards=1; WithShards(0)/Shards:0 means
# "use DefaultShards".
PINNED=$(grep -rnE 'WithShards\(1\)|Shards:[[:space:]]*1([^0-9]|$)|shards[[:space:]]*=[[:space:]]*1([^0-9]|$)' \
    --include='*.go' . | grep -v '_test\.go' || true)
if [ -n "$PINNED" ]; then
    echo "sharded core pinned to a single shard outside tests:" >&2
    echo "$PINNED" >&2
    exit 1
fi
# Fault-storm smoke: 64 goroutines faulting 8 swapped clusters must issue
# exactly 8 donor fetches (single-flight coalescing), race-clean at
# GOMAXPROCS 1 and 4.
go test -race -run '^TestFaultStormCoalesces$' -count=1 -cpu 1,4 ./internal/core/
# Fault-bench smoke: a pointer chase with the prefetcher on must serve at
# least half its cluster boundaries from the prefetch inventory, with the
# mean prefetch-hit crossing >= 10x cheaper than a demand fault
# (BENCH_fault.json records the full numbers).
go test -run '^TestFaultBenchSmoke$' -count=1 .
go test -bench . -benchtime=1x -run '^$' ./...
