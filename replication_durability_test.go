package objectswap

// End-to-end durability of replicated placement: a cluster shipped to K=2
// donors survives the hard loss of one, the survivor serves the swap-in, the
// background repair loop restores the replication factor on a fresh donor,
// and the replication gauge plus the /healthz underreplicated check flip
// degraded -> ok around the repair.

import (
	"bufio"
	"bytes"
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/store"
)

// metricValue reads one series (name plus rendered labels, e.g.
// `m{stat="x"}`) off the system's metrics page.
func metricValue(t *testing.T, sys *System, series string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: %v (line %q)", series, err, line)
			}
			return v
		}
	}
	t.Fatalf("series %s not on the metrics page", series)
	return 0
}

func TestReplicatedSwapSurvivesDonorLoss(t *testing.T) {
	sys, err := New(Config{
		HeapCapacity: 1 << 20,
		DeviceName:   "dur-sys",
		Replicas:     2,
		Transport:    TransportPolicy{MaxAttempts: 1, BreakerThreshold: 1, OpTimeout: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Two donors: every K=2 shipment must land on both.
	flakies := map[string]*store.Flaky{
		"donor-a": store.NewFlaky(store.NewMem(0), 1),
		"donor-b": store.NewFlaky(store.NewMem(0), 1),
	}
	for name, fl := range flakies {
		if err := sys.AttachDevice(name, fl); err != nil {
			t.Fatal(err)
		}
	}

	var repairs []SwapEvent
	sys.Bus().Subscribe(event.TopicSwapRepair, func(ev event.Event) {
		if e, ok := ev.Payload.(SwapEvent); ok {
			repairs = append(repairs, e)
		}
	})

	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 2)
	evX, err := sys.SwapOut(clusters[0])
	if err != nil {
		t.Fatal(err)
	}
	evY, err := sys.SwapOut(clusters[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(evX.Replicas) != 2 || len(evY.Replicas) != 2 {
		t.Fatalf("replica sets = %v / %v, want 2 each", evX.Replicas, evY.Replicas)
	}

	// Fully replicated: healthz ok, gauge clean, factor 2.
	if code, _ := getHealth(t, sys); code != http.StatusOK {
		t.Fatalf("healthy system reported %d", code)
	}
	if v := metricValue(t, sys, `objectswap_placement_replicas{stat="underreplicated"}`); v != 0 {
		t.Fatalf("underreplicated gauge = %v", v)
	}
	if v := metricValue(t, sys, `objectswap_placement_replicas{stat="factor"}`); v != 2 {
		t.Fatalf("replication factor gauge = %v", v)
	}

	// Hard-kill the primary replica of cluster X: every operation fails.
	dead := evX.Replicas[0]
	for _, op := range []store.Op{store.OpPut, store.OpGet, store.OpDrop, store.OpStats, store.OpKeys} {
		flakies[dead].FailNext(op, -1)
	}

	// The swap-in falls through the dead donor to the survivor — and the
	// failed Get trips the breaker, marking the donor gone.
	inEv, err := sys.SwapIn(clusters[0])
	if err != nil {
		t.Fatalf("swap-in past dead donor: %v", err)
	}
	if len(inEv.Attempted) != 1 || inEv.Attempted[0] != dead {
		t.Fatalf("attempted = %v, want [%s]", inEv.Attempted, dead)
	}
	if !sys.TransportSnapshot().Devices[dead].BreakerOpen {
		t.Fatal("breaker not open after dead replica fell through")
	}

	// Cluster Y is now under-replicated (no third donor exists yet to repair
	// onto): the gauge and /healthz must report the degraded state.
	if v := metricValue(t, sys, `objectswap_placement_replicas{stat="underreplicated"}`); v != 1 {
		t.Fatalf("underreplicated gauge = %v, want 1", v)
	}
	code, hr := getHealth(t, sys)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded system reported %d", code)
	}
	if c := checkNamed(t, hr, "underreplicated"); c.OK {
		t.Fatalf("underreplicated check passed while degraded: %+v", c)
	}

	// A fresh donor appears; one repair sweep restores K=2 for cluster Y.
	if err := sys.AttachDevice("donor-c", store.NewMem(0)); err != nil {
		t.Fatal(err)
	}
	repaired, err := sys.RepairNow(context.Background())
	if err != nil {
		t.Fatalf("repair sweep: %v", err)
	}
	if repaired != 1 {
		t.Fatalf("repaired %d clusters, want 1", repaired)
	}
	if len(repairs) == 0 {
		t.Fatal("no swap.repair event emitted")
	}
	newSet := sys.Runtime().ReplicaSet(clusters[1])
	if len(newSet) != 2 {
		t.Fatalf("repaired replica set = %v", newSet)
	}
	for _, name := range newSet {
		if name == dead {
			t.Fatalf("dead donor still in repaired set %v", newSet)
		}
	}

	// Healthy again: gauge clean, the underreplicated check flips back to ok
	// (the dead donor's breaker stays legitimately open until the device is
	// detached, after which the whole page is 200 again).
	if v := metricValue(t, sys, `objectswap_placement_replicas{stat="underreplicated"}`); v != 0 {
		t.Fatalf("underreplicated gauge after repair = %v", v)
	}
	_, hr = getHealth(t, sys)
	if c := checkNamed(t, hr, "underreplicated"); !c.OK {
		t.Fatalf("underreplicated check still failing after repair: %+v", c)
	}
	if err := sys.DetachDevice(dead); err != nil {
		t.Fatal(err)
	}
	if code, _ := getHealth(t, sys); code != http.StatusOK {
		t.Fatalf("repaired system reported %d", code)
	}

	// Cluster Y reloads intact from the repaired set — including when the
	// repair shipped to the brand-new donor.
	if _, err := sys.SwapIn(clusters[1]); err != nil {
		t.Fatalf("swap-in after repair: %v", err)
	}
	for i, c := range clusters {
		root, err := sys.MustRoot(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		title, err := sys.Field(root, "title")
		if err != nil {
			t.Fatalf("cluster %d title: %v", c, err)
		}
		if s, _ := title.Str(); s != "x" {
			t.Fatalf("cluster %d payload damaged: %q", c, s)
		}
	}
}

// TestDetachDeviceKicksRepair exercises the DetachDevice -> device.removed ->
// background repair path end to end (the breaker-less way to lose a donor).
func TestDetachDeviceKicksRepair(t *testing.T) {
	sys, err := New(Config{HeapCapacity: 1 << 20, DeviceName: "det-sys", Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, name := range []string{"donor-a", "donor-b", "donor-c"} {
		if err := sys.AttachDevice(name, store.NewMem(0)); err != nil {
			t.Fatal(err)
		}
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 1)
	ev, err := sys.SwapOut(clusters[0])
	if err != nil {
		t.Fatal(err)
	}

	if err := sys.DetachDevice(ev.Replicas[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.DetachDevice("never-attached"); err == nil {
		t.Fatal("detaching an unknown device succeeded")
	}

	// The background loop was kicked; force a deterministic sweep too and
	// verify the factor is restored on the remaining donors.
	if _, err := sys.RepairNow(context.Background()); err != nil {
		t.Fatalf("repair sweep: %v", err)
	}
	newSet := sys.Runtime().ReplicaSet(clusters[0])
	if len(newSet) != 2 {
		t.Fatalf("replica set after detach+repair = %v", newSet)
	}
	for _, name := range newSet {
		if name == ev.Replicas[0] {
			t.Fatalf("detached donor still in set %v", newSet)
		}
	}
	if _, err := sys.SwapIn(clusters[0]); err != nil {
		t.Fatal(err)
	}
}
