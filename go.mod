module objectswap

go 1.22
