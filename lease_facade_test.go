package objectswap

import (
	"context"
	"testing"
	"time"

	"objectswap/internal/store"
)

// TestRenewLeasesNowKeepsSwappedClustersAlive drives the owner side of the
// donor lease GC through the facade: swapped clusters' keys are renewed on
// their (lease-tracking) donor, so a sweep after the renewal expires only
// what the owner stopped claiming.
func TestRenewLeasesNowKeepsSwappedClustersAlive(t *testing.T) {
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	donor := store.NewLeaseGC(store.NewVersioned(store.NewMem(0), 1), 30*time.Second, clock)

	sys, err := New(Config{HeapCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	// Through AttachDevice: the transport decorator must pass the Leaser
	// capability through, or the facade loop cannot see it.
	if err := sys.AttachDevice("donor", donor); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	clusters := buildClusters(t, sys, cls, 2)
	for _, c := range clusters {
		if _, err := sys.SwapOut(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := donor.LeaseCount(); got != 2 {
		t.Fatalf("leases after swap-out = %d, want 2", got)
	}

	// 20s later the owner renews; 20s after that only an unclaimed orphan
	// (stored out-of-band, never renewed) lapses.
	if err := donor.Put(context.Background(), "orphan", []byte("stale")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(20 * time.Second)
	if renewed := sys.RenewLeasesNow(context.Background()); renewed != 2 {
		t.Fatalf("RenewLeasesNow renewed %d keys, want 2", renewed)
	}
	now = now.Add(20 * time.Second) // orphan: 40s > TTL; renewed keys: 20s in

	expired, err := donor.ExpireLapsed(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0] != "orphan" {
		t.Fatalf("expired = %v, want only the orphan", expired)
	}

	// The swapped clusters survive and still fault back in.
	for i := range clusters {
		root, err := sys.MustRoot(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Invoke(root, "title"); err != nil {
			t.Fatalf("reload cluster %d after sweep: %v", clusters[i], err)
		}
	}
}

// TestLeaseRenewLoopRuns starts the background loop and observes at least
// one renewal tick without any explicit RenewLeasesNow call.
func TestLeaseRenewLoopRuns(t *testing.T) {
	donor := store.NewLeaseGC(store.NewMem(0), time.Hour, nil)
	sys, err := New(Config{HeapCapacity: 1 << 20, LeaseRenewEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.AttachDevice("donor", donor); err != nil {
		t.Fatal(err)
	}
	cls := sys.MustRegisterClass(taskClass())
	c := buildClusters(t, sys, cls, 1)[0]
	if _, err := sys.SwapOut(c); err != nil {
		t.Fatal(err)
	}

	key := sys.Clusters()[len(sys.Clusters())-1].Key
	deadlineAt := func() (time.Time, bool) { return donor.Deadline(key) }
	first, ok := deadlineAt()
	if !ok {
		t.Fatalf("no lease for swapped key %q", key)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, ok := deadlineAt(); ok && d.After(first) {
			break // the loop renewed: the deadline moved forward
		}
		if time.Now().After(deadline) {
			t.Fatal("lease loop never renewed the swapped key")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
