package objectswap

// Benchmark harness: every table/figure of the paper's evaluation has a
// testing.B entry point here (see EXPERIMENTS.md for the mapping).
//
//	BenchmarkFig5            — Figure 5: A1/A2/B1/B2 × swap-cluster sizes
//	BenchmarkNaiveProxy      — §5 naive one-proxy-per-object comparison
//	BenchmarkSwapTransfer    — §4 transfer behaviour over Bluetooth-class link
//	BenchmarkCompression     — §6 heap-compression comparator
//	BenchmarkOffload         — §6 surrogate per-object offloading comparator
//	BenchmarkSwapCycle       — §3 swap-out + collect + swap-in round trip
//	BenchmarkClusterSize     — ablation: the adaptable swap-cluster size knob
//	BenchmarkVictimStrategy  — ablation: victim selection strategies
//
// Regenerate everything with:
//
//	go test -bench . -benchmem

import (
	"fmt"
	"testing"
	"time"

	"objectswap/internal/baseline"
	"objectswap/internal/bench"
	"objectswap/internal/core"
	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/store"
)

// fig5Objects is the paper's list length.
const fig5Objects = 10000

// BenchmarkFig5 regenerates every cell of Figure 5. The per-op time of each
// sub-benchmark is the cell value; the paper's shape (overhead shrinking
// with swap-cluster size; A2 ≫ A1; B1 ≫ B2; the NO SWAP-CLUSTERS floor) is
// the reproduction target.
func BenchmarkFig5(b *testing.B) {
	for _, test := range bench.Tests {
		for _, cfg := range bench.Fig5Configs(fig5Objects) {
			name := fmt.Sprintf("%s/clusters=%s", test, cfg.Label())
			b.Run(name, func(b *testing.B) {
				env, err := bench.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				// Warm-up outside the timer.
				if _, err := bench.RunTest(env, test); err != nil {
					b.Fatal(err)
				}
				if env.RT != nil {
					env.RT.Collect()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunTest(env, test); err != nil {
						b.Fatal(err)
					}
					// Proxy churn (B1, A2) is part of the measured cost; its
					// cleanup is not.
					if env.RT != nil {
						b.StopTimer()
						env.RT.Collect()
						b.StartTimer()
					}
				}
			})
		}
	}
}

// BenchmarkNaiveProxy quantifies §5's closing comparison. The reported
// metrics carry the memory story; per-op time covers the full dual
// measurement.
func BenchmarkNaiveProxy(b *testing.B) {
	var last bench.NaiveComparison
	for i := 0; i < b.N; i++ {
		res, err := bench.RunNaiveComparison(2000, 64, 100)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SwapBytesLoaded), "swap-bytes-loaded")
	b.ReportMetric(float64(last.NaiveBytesLoaded), "naive-bytes-loaded")
	b.ReportMetric(float64(last.SwapBytesSwapped), "swap-bytes-out")
	b.ReportMetric(float64(last.NaiveBytesSwapped), "naive-bytes-out")
	b.ReportMetric(float64(last.SwapReloadFaults), "swap-reload-faults")
	b.ReportMetric(float64(last.NaiveReloadFaults), "naive-reload-faults")
}

// BenchmarkSwapTransfer measures the §4 shipment path over the simulated
// 700 Kbps Bluetooth link; virtual link milliseconds are reported as
// metrics so wall-clock per-op covers only the real work (serialization,
// installation).
func BenchmarkSwapTransfer(b *testing.B) {
	for _, n := range []int{20, 50, 100} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			var last bench.TransferResult
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunSwapTransfer([]int{n}, 64, link.Bluetooth1())
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(float64(last.XMLBytes), "xml-bytes")
			b.ReportMetric(float64(last.SwapOutTime.Milliseconds()), "link-ms-out")
			b.ReportMetric(float64(last.SwapInTime.Milliseconds()), "link-ms-in")
		})
	}
}

// BenchmarkCompression contrasts §6's in-heap compression against swapping
// on the same graph.
func BenchmarkCompression(b *testing.B) {
	var last bench.CompressionComparison
	for i := 0; i < b.N; i++ {
		res, err := bench.RunCompressionComparison(500, 1024)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SwapFreedBytes), "swap-freed-bytes")
	b.ReportMetric(float64(last.CompressSavedBytes), "compress-saved-bytes")
	b.ReportMetric(float64(last.CompressCPU.Microseconds()), "compress-cpu-us")
	b.ReportMetric(float64(last.DecompressCPU.Microseconds()), "decompress-cpu-us")
}

// BenchmarkOffload measures the surrogate (per-object) offloading
// comparator: offload everything, then traverse (one fault per object).
func BenchmarkOffload(b *testing.B) {
	cls := bench.NodeClass()
	for i := 0; i < b.N; i++ {
		h := heap.New(0)
		reg := heap.NewRegistry()
		reg.MustRegister(cls)
		p := baseline.NewPerObject(h, reg, store.NewMem(0))
		refs := make([]heap.Value, 500)
		for j := range refs {
			v, err := p.NewObject(cls)
			if err != nil {
				b.Fatal(err)
			}
			refs[j] = v
		}
		for j := 0; j < len(refs)-1; j++ {
			if err := p.SetFieldValue(refs[j], "next", refs[j+1]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.OffloadAll(); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Invoke(refs[0], "walk", heap.Int(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapCycle measures the §3 detach → collect → reload round trip
// for one 100-object cluster against an in-memory device.
func BenchmarkSwapCycle(b *testing.B) {
	env, err := bench.Build(bench.Config{Objects: 100, PayloadBytes: 64, ClusterSize: 100})
	if err != nil {
		b.Fatal(err)
	}
	rt := env.RT
	victims := rt.Manager().SelectVictims(core.VictimColdest)
	if len(victims) != 1 {
		b.Fatalf("victims = %v", victims)
	}
	cluster := victims[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.SwapOut(cluster); err != nil {
			b.Fatal(err)
		}
		rt.Collect()
		if _, err := rt.SwapIn(cluster); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelEvict measures the parallel eviction pipeline: one pass
// ships every cluster of a 600-object list through SwapOutMany at the given
// worker-pool width, collects, and reloads (off the timer). The device sits
// behind a simulated fast-LAN link on the real clock, so per-op time shows
// what the pool buys: with parallel=1 encode and shipment strictly
// alternate; wider pools overlap the XML encoding of one cluster with the
// device transfer of another.
func BenchmarkParallelEvict(b *testing.B) {
	lan := link.Profile{Name: "lan", BitsPerSecond: 100_000_000, Latency: time.Millisecond}
	for _, parallel := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			h := heap.New(0)
			devices := store.NewRegistry(store.SelectMostFree)
			if err := devices.Add("lan-neighbor", link.Wrap(store.NewMem(0), lan, link.RealClock{})); err != nil {
				b.Fatal(err)
			}
			rt := core.NewRuntime(h, heap.NewRegistry(), core.WithStores(devices))
			cls := bench.NodeClass()
			rt.MustRegisterClass(cls)
			payload := make([]byte, 64)
			var cluster core.ClusterID
			var prev *heap.Object
			for i := 0; i < 600; i++ {
				if i%50 == 0 {
					cluster = rt.Manager().NewCluster()
				}
				o, err := rt.NewObject(cls, cluster)
				if err != nil {
					b.Fatal(err)
				}
				if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
					b.Fatal(err)
				}
				if prev == nil {
					if err := rt.SetRoot("head", o.RefTo()); err != nil {
						b.Fatal(err)
					}
				} else if err := rt.SetFieldValue(prev.RefTo(), "next", o.RefTo()); err != nil {
					b.Fatal(err)
				}
				prev = o
			}
			victims := rt.Manager().SelectVictims(core.VictimColdest)
			if len(victims) != 12 {
				b.Fatalf("victims = %d", len(victims))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				evs, err := rt.SwapOutMany(victims, parallel)
				if err != nil {
					b.Fatal(err)
				}
				if len(evs) != len(victims) {
					b.Fatalf("shipped %d of %d clusters", len(evs), len(victims))
				}
				// Restore residency outside the timer: the pipeline under
				// measurement is the eviction pass.
				b.StopTimer()
				rt.Collect()
				for _, v := range victims {
					if _, err := rt.SwapIn(v); err != nil {
						b.Fatal(err)
					}
				}
				rt.Collect()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkClusterSize runs the adaptable-size ablation: a Zipf-skewed
// working set through a limited heap, per swap-cluster size. Link traffic
// and fault counts are reported as metrics.
func BenchmarkClusterSize(b *testing.B) {
	for _, size := range []int{10, 20, 50, 100} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var last bench.SweepResult
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunClusterSizeSweep(bench.SweepConfig{}, []int{size})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(float64(last.SwapIns), "swap-ins")
			b.ReportMetric(float64(last.BytesShipped), "bytes-shipped")
			b.ReportMetric(float64(last.LinkTime.Milliseconds()), "link-ms")
		})
	}
}

// BenchmarkVictimStrategy runs the victim-selection ablation on the same
// workload at cluster size 50.
func BenchmarkVictimStrategy(b *testing.B) {
	for _, strategy := range []core.VictimStrategy{
		core.VictimColdest, core.VictimLargest, core.VictimLeastUsed,
	} {
		b.Run(strategy.String(), func(b *testing.B) {
			var last bench.SweepResult
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunVictimStrategySweep(bench.SweepConfig{}, 50)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Strategy == strategy {
						last = r
					}
				}
			}
			b.ReportMetric(float64(last.SwapIns), "swap-ins")
			b.ReportMetric(float64(last.BytesShipped), "bytes-shipped")
			b.ReportMetric(float64(last.LinkTime.Milliseconds()), "link-ms")
		})
	}
}

// BenchmarkSwapEndToEnd measures one full swap-out/swap-in round trip at the
// facade level — bus events, metrics, flight recorder, transport resilience
// and trace propagation all enabled — against a simulated 100 Mbps / 1 ms
// LAN store. This is the latency an operator of a wired System sees, as
// opposed to BenchmarkSwapCycle's bare-runtime figure; results are recorded
// in BENCH_swap.json.
func BenchmarkSwapEndToEnd(b *testing.B) {
	lan := link.Profile{Name: "lan", BitsPerSecond: 100_000_000, Latency: time.Millisecond}
	for _, n := range []int{20, 50, 100} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			sys, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.AttachDevice("lan-neighbor",
				link.Wrap(store.NewMem(0), lan, link.RealClock{})); err != nil {
				b.Fatal(err)
			}
			cls := bench.NodeClass()
			sys.MustRegisterClass(cls)
			cluster := sys.NewCluster()
			payload := make([]byte, 64)
			var prev *heap.Object
			for i := 0; i < n; i++ {
				o, err := sys.NewObject(cls, cluster)
				if err != nil {
					b.Fatal(err)
				}
				if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
					b.Fatal(err)
				}
				if prev == nil {
					if err := sys.SetRoot("head", o.RefTo()); err != nil {
						b.Fatal(err)
					}
				} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
					b.Fatal(err)
				}
				prev = o
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.SwapOut(cluster); err != nil {
					b.Fatal(err)
				}
				sys.Collect()
				if _, err := sys.SwapIn(cluster); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicatedSwapOut prices the durability knob: one swap-out of a
// 50-object cluster shipped to K rendezvous-chosen donors (of four attached)
// over a simulated 100 Mbps / 1 ms LAN. The K donors are written in parallel,
// so the cost of K=2/K=3 over K=1 is serialization fan-out and the slowest
// link, not K sequential transfers; results go to BENCH_placement.json.
func BenchmarkReplicatedSwapOut(b *testing.B) {
	lan := link.Profile{Name: "lan", BitsPerSecond: 100_000_000, Latency: time.Millisecond}
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", k), func(b *testing.B) {
			sys, err := New(Config{DeviceName: "bench-repl", Replicas: k})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			for i := 0; i < 4; i++ {
				if err := sys.AttachDevice(fmt.Sprintf("lan-donor-%d", i),
					link.Wrap(store.NewMem(0), lan, link.RealClock{})); err != nil {
					b.Fatal(err)
				}
			}
			cls := bench.NodeClass()
			sys.MustRegisterClass(cls)
			cluster := sys.NewCluster()
			payload := make([]byte, 64)
			var prev *heap.Object
			for i := 0; i < 50; i++ {
				o, err := sys.NewObject(cls, cluster)
				if err != nil {
					b.Fatal(err)
				}
				if err := o.SetFieldByName("payload", heap.Bytes(payload)); err != nil {
					b.Fatal(err)
				}
				if prev == nil {
					if err := sys.SetRoot("head", o.RefTo()); err != nil {
						b.Fatal(err)
					}
				} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
					b.Fatal(err)
				}
				prev = o
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.SwapOut(cluster); err != nil {
					b.Fatal(err)
				}
				b.StopTimer() // the reload is not the figure being measured
				sys.Collect()
				if _, err := sys.SwapIn(cluster); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkProxyHop isolates the cost the paper's trade-off rests on: one
// cross-cluster invocation vs one intra-cluster invocation.
func BenchmarkProxyHop(b *testing.B) {
	env, err := bench.Build(bench.Config{Objects: 40, PayloadBytes: 8, ClusterSize: 20})
	if err != nil {
		b.Fatal(err)
	}
	rt := env.RT
	// env.Head is a proxy (root → cluster 1); resolve the direct object too.
	direct, err := rt.Deref(env.Head)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("via-proxy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rt.Invoke(env.Head, "next"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rt.Invoke(direct.RefTo(), "next"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
