package objectswap

// scenario_test drives the paper's Figure 2 deployment end to end: multiple
// constrained PDAs replicate from one master and swap to a *shared
// neighborhood* of storage devices over HTTP, concurrently, with keys and
// clusters fully isolated per device.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/replication"
	"objectswap/internal/store"
)

func TestNeighborhoodScenario(t *testing.T) {
	// One master catalogue.
	reg := heap.NewRegistry()
	reg.MustRegister(taskClass())
	master := replication.NewMaster(reg, 10)
	cls, _ := reg.Lookup("Task")
	var prev *heap.Object
	const items = 60
	for i := 0; i < items; i++ {
		o, _ := master.Heap().New(cls)
		o.MustSet("title", heap.Str(fmt.Sprintf("item-%02d", i)))
		if prev == nil {
			master.Heap().SetRoot("catalogue", o.RefTo())
		} else {
			prev.MustSet("next", o.RefTo())
		}
		prev = o
	}
	masterSrv := httptest.NewServer(replication.NewHandler(master))
	defer masterSrv.Close()

	// Two shared storage nodes in the neighborhood.
	shared1 := store.NewMem(0)
	shared2 := store.NewMem(0)
	store1 := httptest.NewServer(store.NewHandler(shared1))
	defer store1.Close()
	store2 := httptest.NewServer(store.NewHandler(shared2))
	defer store2.Close()

	// Three PDAs working concurrently. Each System is single-threaded
	// internally; concurrency is across devices, as in the real scenario.
	const pdas = 3
	var wg sync.WaitGroup
	var totalSwaps atomic.Int64
	errs := make([]error, pdas)
	for p := 0; p < pdas; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = runPDA(p, masterSrv.URL, store1.URL, store2.URL, items, &totalSwaps)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("pda %d: %v", p, err)
		}
	}

	// Pressure really moved data through the neighborhood (keys never
	// collided — every PDA verified both passes — and shipments flowed).
	if totalSwaps.Load() == 0 {
		t.Fatal("no shipments reached the neighborhood stores")
	}
}

// runPDA replicates the catalogue, works through it under memory pressure,
// and verifies every item.
func runPDA(id int, masterURL, store1URL, store2URL string, items int, swaps *atomic.Int64) error {
	sys, err := New(Config{
		HeapCapacity:    16 << 10,
		MemoryThreshold: 0.5,
		DeviceSelection: store.SelectRoundRobin,
	})
	if err != nil {
		return err
	}
	if err := sys.AttachDevice("shared-1", store.NewClient(store1URL)); err != nil {
		return err
	}
	if err := sys.AttachDevice("shared-2", store.NewClient(store2URL)); err != nil {
		return err
	}
	// Every published swap event must carry the pipeline's phase breakdown.
	var phaseErr atomic.Value
	checkPhases := func(ev event.Event, want []string) {
		e, ok := ev.Payload.(SwapEvent)
		if !ok {
			phaseErr.Store(fmt.Errorf("swap event payload is %T", ev.Payload))
			return
		}
		if len(e.Phases) != len(want) {
			phaseErr.Store(fmt.Errorf("swap event has %d phases, want %d", len(e.Phases), len(want)))
			return
		}
		var bytes int64
		for i, ph := range e.Phases {
			if ph.Name != want[i] {
				phaseErr.Store(fmt.Errorf("phase %d is %q, want %q", i, ph.Name, want[i]))
				return
			}
			bytes += ph.Bytes
		}
		if bytes == 0 {
			phaseErr.Store(fmt.Errorf("swap event phases carry no bytes"))
		}
	}
	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		swaps.Add(1)
		checkPhases(ev, []string{"reserve", "snapshot", "negotiate", "encode", "ship", "commit"})
	})
	sys.Bus().Subscribe(event.TopicSwapIn, func(ev event.Event) {
		checkPhases(ev, []string{"reserve", "fetch", "decode", "evict", "install"})
	})
	sys.MustRegisterClass(taskClass())
	repl := sys.ReplicateFrom(replication.NewClient(masterURL), 1)
	if _, err := repl.ReplicateRoot(context.Background(), "catalogue"); err != nil {
		return err
	}

	// Two full passes: the second pass re-faults whatever pressure evicted.
	for pass := 0; pass < 2; pass++ {
		cur, err := sys.MustRoot("catalogue")
		if err != nil {
			return err
		}
		count := 0
		for !cur.IsNil() {
			// The context-management monitor runs alongside the application,
			// turning occupancy into policy-driven swap-outs.
			sys.Monitor().Check()
			out, err := sys.Invoke(cur, "title")
			if err != nil {
				return fmt.Errorf("pass %d item %d: %w", pass, count, err)
			}
			title, _ := out[0].Str()
			if title != fmt.Sprintf("item-%02d", count) {
				return fmt.Errorf("pass %d item %d: got %q", pass, count, title)
			}
			cur, err = sys.Field(cur, "next")
			if err != nil {
				return err
			}
			count++
		}
		if count != items {
			return fmt.Errorf("pass %d: %d items, want %d", pass, count, items)
		}
	}
	if err, ok := phaseErr.Load().(error); ok {
		return err
	}
	return nil
}
