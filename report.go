package objectswap

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// Report renders a human-readable snapshot of the middleware state: heap
// occupancy, swap-cluster inventory with residency and traffic counters,
// proxy population, device reachability, and a digest of the observability
// registry (swap pipeline, GC, bus, policy). All numeric state is read from
// the same obs registry WriteMetrics exposes, so the report and the metrics
// page can never disagree. Intended for diagnostics and demo output.
func (s *System) Report() string {
	var b strings.Builder
	dev := s.rt.Name()
	fmt.Fprintf(&b, "device %q\n", dev)

	// Heap occupancy and GC lifetime counters, via the registry's callback
	// gauges (live reads of the heap, not a stale copy).
	used := s.metric("objectswap_heap_used_bytes", "device", dev)
	capacity := s.metric("objectswap_heap_capacity_bytes", "device", dev)
	objects := s.metric("objectswap_heap_objects", "device", dev)
	cycles := s.metric("objectswap_heap_gc_cycles_total", "device", dev)
	reclaimed := s.metric("objectswap_heap_gc_reclaimed_objects_total", "device", dev)
	if capacity > 0 {
		fmt.Fprintf(&b, "heap: %.0f/%.0f bytes (%.0f%%), %.0f objects, %.0f collections, %.0f reclaimed\n",
			used, capacity, used/capacity*100, objects, cycles, reclaimed)
	} else {
		fmt.Fprintf(&b, "heap: %.0f bytes (unlimited), %.0f objects, %.0f collections, %.0f reclaimed\n",
			used, objects, cycles, reclaimed)
	}
	fmt.Fprintf(&b, "proxies: %d swap-cluster, %d object-fault; pending drops: %d, abandoned drops: %d\n",
		s.rt.Manager().ProxyCount(), s.rt.Manager().ObjProxyCount(),
		s.rt.Manager().PendingDrops(), s.rt.Manager().AbandonedDrops())

	infos := s.Clusters()
	fmt.Fprintf(&b, "swap-clusters (%d):\n", len(infos))
	for _, info := range infos {
		state := "loaded"
		if info.Swapped {
			state = fmt.Sprintf("swapped -> %s (%d XML bytes)", info.Device, info.PayloadBytes)
		}
		label := fmt.Sprintf("%d", info.ID)
		if info.ID == RootCluster {
			label = "0 (globals)"
		}
		fmt.Fprintf(&b, "  cluster %-12s %4d objects %8d bytes  out/in %d/%d  crossings %-6d %s\n",
			label, info.Objects, info.ResidentBytes, info.SwapOuts, info.SwapIns, info.Crossings, state)
	}

	names := s.devices.Names()
	fmt.Fprintf(&b, "devices (%d):\n", len(names))
	for _, name := range names {
		st, err := s.devices.Lookup(name)
		if err != nil {
			fmt.Fprintf(&b, "  %-16s unreachable\n", name)
			continue
		}
		stats, err := st.Stats(context.Background())
		if err != nil {
			fmt.Fprintf(&b, "  %-16s error: %v\n", name, err)
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d shipments, %d bytes used\n", name, stats.Items, stats.Used)
	}

	s.writeSwapDigest(&b)
	s.writeSpineDigest(&b)
	b.WriteString(s.metrics.Snapshot().String())
	return b.String()
}

// writeSwapDigest renders the swap pipeline's span histograms: operation
// counts with mean latency, and the per-phase time/byte breakdown.
func (s *System) writeSwapDigest(b *strings.Builder) {
	wroteHeader := false
	for _, op := range []string{"swap_out", "swap_in"} {
		hs, ok := s.obsReg.HistogramSnapshotOf("objectswap_swap_seconds", op)
		if !ok || hs.Count == 0 {
			continue
		}
		if !wroteHeader {
			b.WriteString("swap pipeline:\n")
			wroteHeader = true
		}
		fmt.Fprintf(b, "  %-9s %d ops, mean %.3fms\n",
			op, hs.Count, hs.Sum/float64(hs.Count)*1000)
		phases := []string{"reserve", "snapshot", "encode", "ship", "commit"}
		if op == "swap_in" {
			phases = []string{"reserve", "fetch", "decode", "evict", "install"}
		}
		for _, ph := range phases {
			phs, ok := s.obsReg.HistogramSnapshotOf("objectswap_swap_phase_seconds", op, ph)
			if !ok || phs.Count == 0 {
				continue
			}
			line := fmt.Sprintf("    %-9s mean %.3fms", ph, phs.Sum/float64(phs.Count)*1000)
			if bytes, ok := s.obsReg.Value("objectswap_swap_phase_bytes_total", op, ph); ok && bytes > 0 {
				line += fmt.Sprintf(", %.0f bytes", bytes)
			}
			b.WriteString(line + "\n")
		}
	}
	if errs := s.metric("objectswap_swap_errors_total", "op", "swap_out") +
		s.metric("objectswap_swap_errors_total", "op", "swap_in"); errs > 0 {
		fmt.Fprintf(b, "  errors    %.0f\n", errs)
	}
	// Shard-lock contention: the shard whose swap lock made callers wait
	// longest on average. Near-zero means the sharding is doing its job.
	worst, worstMean := -1, 0.0
	for i := 0; i < s.rt.Shards(); i++ {
		hs, ok := s.obsReg.HistogramSnapshotOf("objectswap_swap_lock_wait_seconds", strconv.Itoa(i))
		if !ok || hs.Count == 0 {
			continue
		}
		if mean := hs.Sum / float64(hs.Count); worst < 0 || mean > worstMean {
			worst, worstMean = i, mean
		}
	}
	if worst >= 0 {
		fmt.Fprintf(b, "  lock-wait worst shard %d/%d, mean %.3fms\n",
			worst, s.rt.Shards(), worstMean*1000)
	}
}

// writeSpineDigest renders one line per mid-level subsystem: event bus,
// policy engine, memory monitor.
func (s *System) writeSpineDigest(b *strings.Builder) {
	published, delivered, panics := 0.0, 0.0, 0.0
	evaluations, fired := 0.0, 0.0
	for _, fs := range s.obsReg.Gather() {
		for _, p := range fs.Points {
			switch fs.Name {
			case "objectswap_bus_published_total":
				published += p.Value
			case "objectswap_bus_delivered_total":
				delivered += p.Value
			case "objectswap_bus_subscriber_panics_total":
				panics += p.Value
			case "objectswap_policy_evaluations_total":
				evaluations += p.Value
			case "objectswap_policy_fired_total":
				fired += p.Value
			}
		}
	}
	fmt.Fprintf(b, "bus: %.0f published, %.0f delivered, %.0f subscriber panics\n",
		published, delivered, panics)
	fmt.Fprintf(b, "policy: %.0f evaluations, %.0f fired; memory edges %.0f/%.0f (threshold/relief)\n",
		evaluations, fired,
		s.metric("objectswap_devctx_memory_edges_total", "edge", "threshold"),
		s.metric("objectswap_devctx_memory_edges_total", "edge", "relief"))
}

// metric reads one counter/gauge series from the registry (0 when absent).
// Label names are accepted in pairs-free form: only values are passed, in
// registration order; the name parameters document the intent at call sites.
func (s *System) metric(family string, labelPairs ...string) float64 {
	values := make([]string, 0, len(labelPairs)/2)
	for i := 1; i < len(labelPairs); i += 2 {
		values = append(values, labelPairs[i])
	}
	v, _ := s.obsReg.Value(family, values...)
	return v
}
