package objectswap

import (
	"context"
	"fmt"
	"strings"
)

// Report renders a human-readable snapshot of the middleware state: heap
// occupancy, swap-cluster inventory with residency and traffic counters,
// proxy population, and device reachability. Intended for diagnostics and
// demo output.
func (s *System) Report() string {
	var b strings.Builder
	st := s.heap.StatsSnapshot()
	fmt.Fprintf(&b, "device %q\n", s.rt.Name())
	if st.Capacity > 0 {
		fmt.Fprintf(&b, "heap: %d/%d bytes (%.0f%%), %d objects, %d collections, %d reclaimed\n",
			st.Used, st.Capacity, st.UsedFraction()*100, st.Objects, st.Collections, st.Reclaimed)
	} else {
		fmt.Fprintf(&b, "heap: %d bytes (unlimited), %d objects, %d collections, %d reclaimed\n",
			st.Used, st.Objects, st.Collections, st.Reclaimed)
	}
	fmt.Fprintf(&b, "proxies: %d swap-cluster, %d object-fault; pending drops: %d, abandoned drops: %d\n",
		s.rt.Manager().ProxyCount(), s.rt.Manager().ObjProxyCount(),
		s.rt.Manager().PendingDrops(), s.rt.Manager().AbandonedDrops())

	infos := s.Clusters()
	fmt.Fprintf(&b, "swap-clusters (%d):\n", len(infos))
	for _, info := range infos {
		state := "loaded"
		if info.Swapped {
			state = fmt.Sprintf("swapped -> %s (%d XML bytes)", info.Device, info.PayloadBytes)
		}
		label := fmt.Sprintf("%d", info.ID)
		if info.ID == RootCluster {
			label = "0 (globals)"
		}
		fmt.Fprintf(&b, "  cluster %-12s %4d objects %8d bytes  out/in %d/%d  crossings %-6d %s\n",
			label, info.Objects, info.ResidentBytes, info.SwapOuts, info.SwapIns, info.Crossings, state)
	}

	names := s.devices.Names()
	fmt.Fprintf(&b, "devices (%d):\n", len(names))
	for _, name := range names {
		st, err := s.devices.Lookup(name)
		if err != nil {
			fmt.Fprintf(&b, "  %-16s unreachable\n", name)
			continue
		}
		stats, err := st.Stats(context.Background())
		if err != nil {
			fmt.Fprintf(&b, "  %-16s error: %v\n", name, err)
			continue
		}
		fmt.Fprintf(&b, "  %-16s %d shipments, %d bytes used\n", name, stats.Items, stats.Used)
	}
	b.WriteString(s.metrics.Snapshot().String())
	return b.String()
}
