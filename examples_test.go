package objectswap

// examples_test smoke-runs every example binary end to end, so the shipped
// documentation code is continuously verified.

import (
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are subprocess smoke tests; skipped with -short")
	}
	cases := []struct {
		dir  string
		want []string // substrings the output must contain
	}{
		{"./examples/quickstart", []string{"swapped cluster", "note #9", "after transparent reload"}},
		{"./examples/photoalbum", []string{"imported album 7", "demoted to desktop", "viewed 12 photos"}},
		{"./examples/fieldsurvey", []string{"records arrived", "observations captured", "species-110 @ grid-11"}},
		{"./examples/contactbook", []string{"swapped to laptop", "group family", "12 contacts"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("command smoke tests; skipped with -short")
	}
	t.Run("fig5", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/fig5", "-n", "200", "-runs", "1").CombinedOutput()
		if err != nil {
			t.Fatalf("fig5 failed: %v\n%s", err, out)
		}
		for _, want := range []string{"Figure 5", "NO SWAP-CLUSTERS", "B2"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("fig5 output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("obiswap", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/obiswap",
			"-heap", "32768", "-clusters", "6", "-per", "20").CombinedOutput()
		if err != nil {
			t.Fatalf("obiswap failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "checksum") || !strings.Contains(string(out), "true") {
			t.Fatalf("obiswap checksum missing:\n%s", out)
		}
	})
	t.Run("obicomp", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/obicomp",
			"-in", "examples/contactbook/contacts/schema.xml").CombinedOutput()
		if err != nil {
			t.Fatalf("obicomp failed: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "func NewContactClass()") {
			t.Fatalf("obicomp output unexpected:\n%s", out)
		}
	})
}

func TestFieldnotesExample(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	out, err := exec.Command("go", "run", "./examples/fieldnotes").CombinedOutput()
	if err != nil {
		t.Fatalf("fieldnotes failed: %v\n%s", err, out)
	}
	for _, want := range []string{"hoarded 60 notes", "pushed 9 updated notes", "— true"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestNeighborhoodSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	for _, seed := range []string{"1", "42"} {
		out, err := exec.Command("go", "run", "./cmd/neighborhood",
			"-rounds", "10", "-seed", seed).CombinedOutput()
		if err != nil {
			t.Fatalf("neighborhood seed %s failed: %v\n%s", seed, err, out)
		}
		if !strings.Contains(string(out), "all chains intact") {
			t.Fatalf("seed %s: correctness sweep missing:\n%s", seed, out)
		}
	}
}
