// Command obiswap demonstrates the full middleware loop on one simulated
// constrained device: it builds object clusters until memory pressure makes
// the policy engine swap cold clusters to a nearby device, then touches the
// swapped data to fault it back, printing every middleware event as it
// happens.
//
// Usage:
//
//	obiswap [-heap bytes] [-clusters N] [-per N] [-payload bytes]
//	        [-device url[,url...]] [-replicas K] [-threshold 0.75] [-metrics]
//	        [-prefetch N] [-prefetch-workers N]
//	        [-ops :9982] [-linger 30s] [-watch 1s] [-log-level info] [-log-json]
//
// With -device, shipments go to running swapstores over HTTP (comma-separate
// several URLs to form a donor pool); otherwise in-process memory devices are
// used. With -replicas K > 1, every swap-out ships to K rendezvous-ranked
// donors and a background repair loop restores lost copies. With -ops, the
// operator surface (/metrics, /healthz, /debug/traces, /debug/events,
// /debug/pprof) is served on a side port; -linger keeps the process alive
// after the run so the endpoints can be inspected, and -watch renders a live
// top-like heat/WSS/thrash view from the telemetry plane while it lingers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"objectswap"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/opshttp"
	"objectswap/internal/store"
	"objectswap/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obiswap:", err)
		os.Exit(1)
	}
}

func run() error {
	heapBytes := flag.Int64("heap", 64<<10, "device heap capacity in bytes")
	clusters := flag.Int("clusters", 12, "swap-clusters to build")
	per := flag.Int("per", 50, "objects per swap-cluster")
	payload := flag.Int("payload", 64, "payload bytes per object")
	device := flag.String("device", "", "comma-separated swapstore URLs to use (default: in-process memory)")
	replicas := flag.Int("replicas", 1, "replication factor: ship each swapped cluster to K donors")
	wire := flag.String("wire", "binary,xml", "shipment wire-format preference order negotiated with donors (binary, binary+flate, delta, xml)")
	shards := flag.Int("shards", 0, "independently locked swap shards in the core (0 = default; 1 = single global lock)")
	prefetch := flag.Int("prefetch", 0, "graph-driven prefetch depth: speculatively swap in up to N neighbor clusters after each demand fault (0 = off)")
	prefetchWorkers := flag.Int("prefetch-workers", 0, "background prefetch swap-in goroutines (0 = default)")
	threshold := flag.Float64("threshold", 0.75, "memory pressure threshold fraction")
	dot := flag.Bool("dot", false, "after building, dump the object graph as Graphviz DOT to stdout and exit")
	metrics := flag.Bool("metrics", false, "after the run, dump the full metrics page (Prometheus text format) to stdout")
	ops := flag.String("ops", "", "serve the ops surface (/metrics, /healthz, /debug/traces, /debug/pprof) on this address, e.g. :9982")
	linger := flag.Duration("linger", 0, "keep the process (and ops server) alive this long after the run")
	watch := flag.Duration("watch", 0, "after the run, render a live top-like heat/WSS/thrash view refreshing at this interval (for -linger, default 30s)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of key=value")
	flag.Parse()

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format := olog.FormatKV
	if *logJSON {
		format = olog.FormatJSON
	}
	logger := olog.New(os.Stderr, olog.WithLevel(level), olog.WithFormat(format))

	var wireFormats []string
	for _, f := range strings.Split(*wire, ",") {
		if f = strings.TrimSpace(f); f != "" {
			wireFormats = append(wireFormats, f)
		}
	}
	sys, err := objectswap.New(objectswap.Config{
		HeapCapacity:    *heapBytes,
		MemoryThreshold: *threshold,
		Replicas:        *replicas,
		WireFormats:     wireFormats,
		Shards:          *shards,
		Prefetch:        objectswap.PrefetchConfig{Depth: *prefetch, Workers: *prefetchWorkers},
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	if *ops != "" {
		srv, err := opshttp.Start(*ops, sys.OpsHandler())
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("ops server listening", "url", srv.URL())
	}

	// Assemble the donor pool: one store.Client per swapstore URL, or enough
	// in-process memory devices to satisfy the replication factor.
	if *device != "" {
		for i, url := range strings.Split(*device, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			name := fmt.Sprintf("neighbor-%d", i)
			if err := sys.AttachDevice(name, store.NewClient(url)); err != nil {
				return err
			}
			fmt.Printf("using remote swapstore at %s as %s\n", url, name)
		}
	} else {
		donors := *replicas
		if donors < 1 {
			donors = 1
		}
		for i := 0; i < donors; i++ {
			if err := sys.AttachDevice(fmt.Sprintf("neighbor-%d", i), store.NewMem(0)); err != nil {
				return err
			}
		}
		fmt.Printf("using %d in-process memory device(s)\n", donors)
	}

	// Narrate middleware events.
	sys.Bus().Subscribe(event.TopicSwapOut, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("  >> swap-out  cluster %-3d %5d objects %7d XML bytes -> %s\n",
			e.Cluster, e.Objects, e.Bytes, strings.Join(e.Replicas, ","))
	})
	sys.Bus().Subscribe(event.TopicSwapIn, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("  << swap-in   cluster %-3d %5d objects\n", e.Cluster, e.Objects)
	})
	sys.Bus().Subscribe(event.TopicSwapDrop, func(ev event.Event) {
		e := ev.Payload.(objectswap.SwapEvent)
		fmt.Printf("  xx drop      cluster %-3d (unreachable)\n", e.Cluster)
	})
	sys.Bus().Subscribe(event.TopicMemoryThreshold, func(ev event.Event) {
		fmt.Println("  !! memory pressure")
	})

	node := heap.NewClass("Record",
		heap.FieldDef{Name: "data", Kind: heap.KindBytes},
		heap.FieldDef{Name: "next", Kind: heap.KindRef},
		heap.FieldDef{Name: "seq", Kind: heap.KindInt},
	)
	node.AddMethod("seq", func(c *heap.Call) ([]heap.Value, error) {
		v, _ := c.Self.FieldByName("seq")
		return []heap.Value{v}, nil
	})
	node.AddMethod("sum", func(c *heap.Call) ([]heap.Value, error) {
		seq, _ := c.Self.FieldByName("seq")
		next, _ := c.Self.FieldByName("next")
		if next.IsNil() {
			return []heap.Value{seq}, nil
		}
		rest, err := c.RT.Invoke(next, "sum")
		if err != nil {
			return nil, err
		}
		restSum, _ := rest[0].Int()
		s, _ := seq.Int()
		return []heap.Value{heap.Int(s + restSum)}, nil
	})
	sys.MustRegisterClass(node)

	fmt.Printf("building %d clusters x %d objects (%d-byte payloads) into a %d-byte heap...\n",
		*clusters, *per, *payload, *heapBytes)
	data := make([]byte, *payload)
	seq := int64(0)
	var want int64
	for c := 0; c < *clusters; c++ {
		cluster := sys.NewCluster()
		var prev *heap.Object
		for i := 0; i < *per; i++ {
			o, err := sys.NewObject(node, cluster)
			if err != nil {
				return fmt.Errorf("cluster %d object %d: %w", c, i, err)
			}
			if err := sys.SetField(o.RefTo(), "data", heap.Bytes(data)); err != nil {
				return err
			}
			if err := sys.SetField(o.RefTo(), "seq", heap.Int(seq)); err != nil {
				return err
			}
			want += seq
			seq++
			if prev == nil {
				if err := sys.SetRoot(fmt.Sprintf("chain-%d", c), o.RefTo()); err != nil {
					return err
				}
			} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
				return err
			}
			prev = o
		}
	}

	if *dot {
		return sys.Runtime().DumpDot(os.Stdout)
	}

	st := sys.Heap().StatsSnapshot()
	fmt.Printf("\nheap: %d/%d bytes, %d objects resident\n", st.Used, st.Capacity, st.Objects)
	fmt.Println("cluster states:")
	for _, info := range sys.Clusters() {
		state := "loaded"
		if info.Swapped {
			state = fmt.Sprintf("swapped (%d XML bytes on %s)",
				info.PayloadBytes, strings.Join(info.Devices, ","))
		}
		fmt.Printf("  cluster %-3d %4d objects  %s\n", info.ID, info.Objects, state)
	}

	fmt.Println("\ntraversing every chain (faults swapped clusters back in)...")
	var got int64
	for c := 0; c < *clusters; c++ {
		root, err := sys.MustRoot(fmt.Sprintf("chain-%d", c))
		if err != nil {
			return err
		}
		out, err := sys.Invoke(root, "sum")
		if err != nil {
			return fmt.Errorf("chain %d: %w", c, err)
		}
		s, _ := out[0].Int()
		got += s
	}
	fmt.Printf("checksum: got %d, want %d — %v\n", got, want, got == want)

	fmt.Println("\nfinal middleware state:")
	fmt.Print(sys.Report())
	if *metrics {
		fmt.Println("\nmetrics page:")
		if err := sys.WriteMetrics(os.Stdout); err != nil {
			return err
		}
	}
	if got != want {
		return fmt.Errorf("checksum mismatch")
	}
	switch {
	case *watch > 0:
		dur := *linger
		if dur <= 0 {
			dur = 30 * time.Second
		}
		logger.Info("live telemetry view", "refresh", *watch, "dur", dur)
		watchTelemetry(sys, *watch, dur)
	case *linger > 0:
		logger.Info("lingering for ops inspection", "dur", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// watchTelemetry renders a top-like live view of the telemetry plane —
// cluster heat ranking, working-set estimate and thrash state — repainting
// every interval until dur has elapsed.
func watchTelemetry(sys *objectswap.System, interval, dur time.Duration) {
	deadline := time.Now().Add(dur)
	for {
		var b strings.Builder
		renderTelemetry(&b, sys.Telemetry())
		// Repaint from the top-left, top(1)-style.
		fmt.Print("\033[H\033[2J" + b.String())
		if !time.Now().Add(interval).Before(deadline) {
			return
		}
		time.Sleep(interval)
	}
}

// renderTelemetry writes one frame of the live view.
func renderTelemetry(w io.Writer, t *telemetry.Tracker) {
	hot, warm, cold := t.Counts()
	wssClusters, wssBytes := t.WSS(0)
	score, degraded := t.ThrashState()
	state := "ok"
	if degraded {
		state = "DEGRADED"
	}
	fmt.Fprintf(w, "obiswap telemetry  %s\n\n", time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "heat    hot %d | warm %d | cold %d\n", hot, warm, cold)
	fmt.Fprintf(w, "wss     %d clusters, %d bytes (window %s)\n", wssClusters, wssBytes, t.Window())
	fmt.Fprintf(w, "thrash  score %.2f, %s\n\n", score, state)
	ranked := t.HeatSnapshot()
	fmt.Fprintf(w, "%-9s %-5s %9s %9s %10s %6s %5s %9s %7s\n",
		"CLUSTER", "CLASS", "SCORE", "TOUCHES", "CROSSINGS", "OUTS", "INS", "PINGPONG", "THRASH")
	const maxRows = 20
	for i, h := range ranked {
		if i == maxRows {
			fmt.Fprintf(w, "... (%d more)\n", len(ranked)-maxRows)
			break
		}
		fmt.Fprintf(w, "%-9d %-5s %9.2f %9d %10d %6d %5d %9d %7.2f\n",
			h.Cluster, h.Class, h.Score, h.Touches, h.Crossings,
			h.SwapOuts, h.SwapIns, h.PingPongs, h.Thrash)
	}
}
