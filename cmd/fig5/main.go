// Command fig5 regenerates the paper's Figure 5 ("Performance penalty of
// Object-Swapping w.r.t. swap-cluster size and graph transversals") plus the
// companion comparisons of Section 5/6.
//
// Usage:
//
//	fig5 [-n objects] [-runs N] [-naive] [-transfer] [-compress] [-reclaim]
//
// With no experiment flags, only Figure 5 is produced. Absolute numbers are
// hardware-dependent (the paper used a 2003-era Pocket PC); the shape —
// overhead shrinking with swap-cluster size, A2 ≫ A1, B1 ≫ B2, the no-swap
// floor — is the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"objectswap/internal/bench"
	"objectswap/internal/link"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fig5:", err)
		os.Exit(1)
	}
}

func run() error {
	objects := flag.Int("n", bench.DefaultObjects, "list length (paper: 10000)")
	runs := flag.Int("runs", 3, "repetitions per cell (best run reported)")
	naive := flag.Bool("naive", false, "also run the naive proxy-per-object comparison (§5)")
	transfer := flag.Bool("transfer", false, "also run the Bluetooth transfer experiment (§4)")
	compress := flag.Bool("compress", false, "also run the compression comparison (§6)")
	reclaim := flag.Bool("reclaim", false, "also run the memory-reclamation experiment (§3)")
	sweep := flag.Bool("sweep", false, "also run the cluster-size and victim-strategy ablations")
	flag.Parse()

	best := make(map[string]bench.Result)
	for r := 0; r < *runs; r++ {
		results, err := bench.RunFig5(*objects)
		if err != nil {
			return err
		}
		for _, res := range results {
			key := res.Test + "/" + res.Config.Label()
			if cur, ok := best[key]; !ok || res.Elapsed < cur.Elapsed {
				best[key] = res
			}
		}
	}
	var results []bench.Result
	for _, res := range best {
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Test != results[j].Test {
			return results[i].Test < results[j].Test
		}
		// Paper column order: 20, 50, 100, NO SWAP-CLUSTERS (0 last).
		a, b := results[i].Config.ClusterSize, results[j].Config.ClusterSize
		if a == 0 {
			a = 1 << 30
		}
		if b == 0 {
			b = 1 << 30
		}
		return a < b
	})

	fmt.Printf("Figure 5 — %d objects, %d bytes payload, best of %d runs\n\n",
		*objects, bench.DefaultPayload, *runs)
	fmt.Print(bench.FormatFig5(results))

	fmt.Println("\nOverhead vs NO SWAP-CLUSTERS (×):")
	ov := bench.Overheads(results)
	for _, test := range bench.Tests {
		fmt.Printf("  %-3s", test)
		for _, col := range []string{"20", "50", "100"} {
			fmt.Printf("  %s:%6.2f", col, ov[test][col])
		}
		fmt.Println()
	}

	if *naive {
		fmt.Println("\n§5 naive proxy-per-object comparison:")
		res, err := bench.RunNaiveComparison(*objects, bench.DefaultPayload, 100)
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s %16s %16s\n", "", "swap-clusters", "naive")
		fmt.Printf("  %-28s %16d %16d\n", "proxies", res.SwapProxies, res.NaiveProxies)
		fmt.Printf("  %-28s %16d %16d\n", "bytes loaded", res.SwapBytesLoaded, res.NaiveBytesLoaded)
		fmt.Printf("  %-28s %16d %16d\n", "bytes after full swap-out", res.SwapBytesSwapped, res.NaiveBytesSwapped)
		fmt.Printf("  %-28s %16v %16v\n", "traversal time", res.SwapTraversalTime.Round(time.Microsecond), res.NaiveTraversalTime.Round(time.Microsecond))
		fmt.Printf("  %-28s %16d %16d\n", "reload faults", res.SwapReloadFaults, res.NaiveReloadFaults)
	}

	if *transfer {
		fmt.Println("\n§4 transfer behaviour (Bluetooth 700 Kbps, virtual time):")
		rows, err := bench.RunSwapTransfer([]int{20, 50, 100, 200}, bench.DefaultPayload, link.Bluetooth1())
		if err != nil {
			return err
		}
		fmt.Printf("  %8s %12s %14s %14s %12s\n", "objects", "XML bytes", "swap-out", "swap-in", "radio")
		for _, r := range rows {
			fmt.Printf("  %8d %12d %14v %14v %12v\n", r.Objects, r.XMLBytes,
				r.SwapOutTime.Round(time.Millisecond), r.SwapInTime.Round(time.Millisecond), r.Energy)
		}
	}

	if *compress {
		fmt.Println("\n§6 compression comparison (Chen et al. style):")
		res, err := bench.RunCompressionComparison(1000, 1024)
		if err != nil {
			return err
		}
		fmt.Printf("  swapping freed %d bytes in %v CPU; energy %v (incl. %d XML bytes each way)\n",
			res.SwapFreedBytes, res.SwapCPU.Round(time.Microsecond), res.SwapEnergy, res.SwapXMLBytes)
		fmt.Printf("  compression saved %d bytes in %v compress + %v decompress CPU; energy %v\n",
			res.CompressSavedBytes, res.CompressCPU.Round(time.Microsecond),
			res.DecompressCPU.Round(time.Microsecond), res.CompressEnergy)
		fmt.Printf("  note: swapping's joules buy fully freed objects; compression's buy\n")
		fmt.Printf("  payload-only savings and recur on every re-access.\n")
	}

	if *reclaim {
		fmt.Println("\n§3 memory reclamation:")
		res, err := bench.RunReclaim(10, 100, bench.DefaultPayload)
		if err != nil {
			return err
		}
		fmt.Printf("  loaded: %d bytes; after swapping 9/10 clusters: %d bytes (%.0f%% freed); after reload: %d bytes; graph preserved: %v\n",
			res.UsedLoaded, res.UsedAfterSwap, res.FreedFraction*100, res.UsedAfterBack, res.GraphPreserved)
	}

	if *sweep {
		cfg := bench.SweepConfig{}
		fmt.Println("\nAblation — swap-cluster size under a skewed working set (Bluetooth link, virtual time):")
		rows, err := bench.RunClusterSizeSweep(cfg, []int{10, 20, 50, 100})
		if err != nil {
			return err
		}
		printSweep(rows)
		fmt.Println("\nAblation — victim selection strategy (cluster size 50):")
		rows, err = bench.RunVictimStrategySweep(cfg, 50)
		if err != nil {
			return err
		}
		printSweep(rows)
	}
	return nil
}

func printSweep(rows []bench.SweepResult) {
	fmt.Printf("  %-14s %10s %10s %14s %12s %12s\n",
		"config", "swap-outs", "swap-ins", "bytes shipped", "link time", "cpu time")
	for _, r := range rows {
		fmt.Printf("  %-14s %10d %10d %14d %12v %12v\n",
			r.Label, r.SwapOuts, r.SwapIns, r.BytesShipped,
			r.LinkTime.Round(time.Millisecond), r.WallTime.Round(time.Microsecond))
	}
}
