// Command swapstore runs a nearby swapping device: a node that needs no VM
// and no middleware — it only stores, returns and drops keyed XML text, over
// the HTTP web-services bridge.
//
// Usage:
//
//	swapstore [-addr :9980] [-dir path] [-capacity bytes] [-formats xml,...]
//	          [-keep N] [-lease-ttl 30s] [-ops :9981] [-log-level info] [-log-json]
//
// With -dir, shipments persist as files (a desktop PC holding swap files);
// otherwise they are held in memory (another PDA's RAM). The store's Stats
// endpoint advertises real remaining capacity (-capacity minus bytes held),
// which constrained devices feed into rendezvous placement as the donor's
// weight — so a filling donor attracts proportionally fewer shipments.
// Every request is access-logged through the structured logger, carrying the
// requesting device's X-Obiswap-Trace ID when present, and retained in a
// flight recorder; -ops serves /metrics, /healthz and /debug/traces on a side
// port so the serving side of a swap is as observable as the constrained
// device.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"objectswap/internal/obs"
	olog "objectswap/internal/obs/log"
	"objectswap/internal/opshttp"
	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swapstore:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9980", "listen address")
	dir := flag.String("dir", "", "persist shipments under this directory (default: in-memory)")
	capacity := flag.Int64("capacity", 0, "byte capacity offered to neighbors (0 = unlimited)")
	keep := flag.Int("keep", -1, "archive up to N replaced/dropped generations per key (-1 = off, 0 = unlimited)")
	leaseTTL := flag.Duration("lease-ttl", 0, "expire shipments whose owner has not renewed within this TTL (0 = keep forever); lapsed replicas are archived, not destroyed")
	formats := flag.String("formats", "", "wire formats to advertise, comma-separated (default: all built-in; e.g. \"xml\" models a legacy XML-only donor)")
	ops := flag.String("ops", "", "serve the ops surface (/metrics, /healthz, /debug/traces) on this address, e.g. :9981")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of key=value")
	flag.Parse()

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	format := olog.FormatKV
	if *logJSON {
		format = olog.FormatJSON
	}
	logger := olog.New(os.Stderr, olog.WithLevel(level), olog.WithFormat(format))

	var s store.Store
	if *dir != "" {
		d, derr := store.NewDisk(*dir, *capacity)
		if derr != nil {
			return derr
		}
		if *formats != "" {
			d.SetFormats(splitFormats(*formats)...)
		}
		s = d
		logger.Info("disk store ready", "dir", *dir, "capacity", *capacity)
	} else {
		m := store.NewMem(*capacity)
		if *formats != "" {
			m.SetFormats(splitFormats(*formats)...)
		}
		s = m
		logger.Info("in-memory store ready", "capacity", *capacity)
	}
	if *formats != "" {
		logger.Info("format advertisement narrowed", "formats", *formats)
	}

	if *keep >= 0 {
		s = store.NewVersioned(s, *keep)
		logger.Info("versioning enabled", "keep", *keep)
	} else if *leaseTTL > 0 {
		// Lease expiry must be non-destructive: without an explicit -keep the
		// GC drops through a one-generation archive, so a lapsed replica is
		// recoverable as <key>#v1 rather than gone.
		s = store.NewVersioned(s, 1)
		logger.Info("versioning enabled for lease GC", "keep", 1)
	}

	var leases *store.LeaseGC
	if *leaseTTL > 0 {
		leases = store.NewLeaseGC(s, *leaseTTL, nil)
		s = leases
		logger.Info("lease GC enabled", "ttl", *leaseTTL)
	}

	reg := obs.NewRegistry(nil)
	recorder := obs.NewRecorder(0, 0)
	requests := reg.CounterVec("swapstore_requests_total",
		"Requests served, by method and status.", "method", "status")

	if leases != nil {
		expired := reg.Counter("swapstore_leases_expired_total",
			"Shipments archived because their owner's lease lapsed.")
		every := *leaseTTL / 4
		if every < time.Second {
			every = time.Second
		}
		go func() {
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for range ticker.C {
				ctx, cancel := context.WithTimeout(context.Background(), every)
				lapsed, err := leases.ExpireLapsed(ctx)
				cancel()
				if err != nil {
					logger.Warn("lease sweep", "err", err)
				}
				if len(lapsed) > 0 {
					expired.Add(float64(len(lapsed)))
					logger.Info("leases expired", "keys", len(lapsed))
				}
			}
		}()
	}

	// Advertise the donor's live capacity on the metrics page, mirroring what
	// the Stats endpoint reports to constrained devices for HRW weighting.
	capGauge := reg.GaugeVec("swapstore_capacity_bytes",
		"Advertised donor capacity, the placement weight neighbors see.", "stat")
	capGauge.WithFunc(func() float64 {
		st, err := s.Stats(context.Background())
		if err != nil {
			return -1
		}
		return float64(st.Free())
	}, "free")
	capGauge.WithFunc(func() float64 {
		st, err := s.Stats(context.Background())
		if err != nil {
			return -1
		}
		return float64(st.Used)
	}, "used")
	if st, err := s.Stats(context.Background()); err == nil {
		logger.Info("advertising capacity", "capacity", st.Capacity, "free", st.Free(),
			"used", st.Used, "items", st.Items)
	}

	if *ops != "" {
		opsSrv, err := opshttp.Start(*ops, opshttp.NewHandler(opshttp.Options{
			Metrics:  reg,
			Recorder: recorder,
			Checks: []opshttp.Check{{Name: "store", Probe: func(ctx context.Context) error {
				_, err := s.Stats(ctx)
				return err
			}}},
			Logger: logger,
		}))
		if err != nil {
			return err
		}
		defer opsSrv.Close()
		logger.Info("ops server listening", "url", opsSrv.URL())
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           accessLog(logger, recorder, requests, store.NewHandler(s)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("listening", "addr", *addr)
	return srv.ListenAndServe()
}

// accessLog wraps the store handler with one structured access-log line per
// request — carrying the requesting device's swap trace ID when the request
// has one — and retains each request as a span in the flight recorder.
func accessLog(lg *olog.Logger, rec *obs.Recorder, requests *obs.CounterVec, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		trace := r.Header.Get(obs.TraceHeader)

		pairs := []any{"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur", dur.Round(time.Microsecond)}
		if trace != "" {
			pairs = append(pairs, "trace", trace)
		}
		lg.Info("request", pairs...)

		requests.With(r.Method, fmt.Sprint(sw.status)).Inc()
		outcome, errText := "ok", ""
		if sw.status >= http.StatusBadRequest {
			outcome = "error"
			errText = fmt.Sprintf("status %d", sw.status)
		}
		rec.RecordSpan(obs.SpanRecord{
			Op:         "http." + r.Method,
			Trace:      trace,
			Key:        r.URL.Path,
			Outcome:    outcome,
			Error:      errText,
			Start:      start,
			DurationNS: dur.Nanoseconds(),
		})
	})
}

// splitFormats parses the -formats flag value into its format list.
func splitFormats(v string) []string {
	var out []string
	for _, f := range strings.Split(v, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
