// Command swapstore runs a nearby swapping device: a node that needs no VM
// and no middleware — it only stores, returns and drops keyed XML text, over
// the HTTP web-services bridge.
//
// Usage:
//
//	swapstore [-addr :9980] [-dir path] [-capacity bytes]
//
// With -dir, shipments persist as files (a desktop PC holding swap files);
// otherwise they are held in memory (another PDA's RAM).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swapstore:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":9980", "listen address")
	dir := flag.String("dir", "", "persist shipments under this directory (default: in-memory)")
	capacity := flag.Int64("capacity", 0, "byte capacity offered to neighbors (0 = unlimited)")
	keep := flag.Int("keep", -1, "archive up to N replaced/dropped generations per key (-1 = off, 0 = unlimited)")
	flag.Parse()

	var (
		s   store.Store
		err error
	)
	if *dir != "" {
		s, err = store.NewDisk(*dir, *capacity)
		if err != nil {
			return err
		}
		log.Printf("swapstore: disk store at %s (capacity %d)", *dir, *capacity)
	} else {
		s = store.NewMem(*capacity)
		log.Printf("swapstore: in-memory store (capacity %d)", *capacity)
	}

	if *keep >= 0 {
		s = store.NewVersioned(s, *keep)
		log.Printf("swapstore: versioning enabled (keep %d generations)", *keep)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logging(store.NewHandler(s)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("swapstore: listening on %s", *addr)
	return srv.ListenAndServe()
}

// logging wraps the store handler with one access-log line per request.
func logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
