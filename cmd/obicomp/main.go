// Command obicomp is the reproduction's analogue of the OBIWAN compiler: it
// reads an XML class schema and generates the Go boilerplate obicomp
// produced for Java/C# classes — class declarations plus swapping-safe
// accessor methods (writes route through reference interception, so
// generated code can never store an un-mediated cross-cluster reference).
//
// The swap-cluster-proxy half of obicomp's output needs no code generation
// here: proxy classes are synthesized when a class is registered with the
// runtime.
//
// Usage:
//
//	obicomp -in classes.xml -out model_gen.go
//	obicomp -in classes.xml            # writes to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"objectswap/internal/schema"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obicomp:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input class schema (XML)")
	out := flag.String("out", "", "output Go file (default: stdout)")
	flag.Parse()

	if *in == "" {
		return fmt.Errorf("missing -in schema file")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	s, err := schema.Parse(data)
	if err != nil {
		return err
	}
	src, err := schema.Generate(s)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(src)
		return err
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "obicomp: generated %d classes into %s\n", len(s.Classes), *out)
	return nil
}
