// Command obicomp is the reproduction's analogue of the OBIWAN compiler: it
// processes application class declarations — XML class schemas and/or Go
// structs annotated //obiswap:class — and generates, per class, the code the
// paper's compiler produced for Java/C#:
//
//   - the class constructor with a generated heap.ClassOps behavior plane
//     (static accessor dispatch, field-index switch, zero-alloc iteration);
//   - a specialized wire codec that writes the identical OBW frame bytes as
//     the generic binary codec (registered automatically by RegisterClass);
//   - a typed proxy-stub wrapper (<Class>Ref) whose every access routes
//     through the runtime's reference interception;
//
// plus register_gen.go (RegisterAll) and schema_gen.xml (the normalized
// schema document).
//
// obicomp never emits broken Go: every generated file must pass
// go/format.Source and parse cleanly, or obicomp exits non-zero without
// writing anything (outputs are staged to temp files and renamed only after
// the whole set validated).
//
// Usage:
//
//	obicomp -dir ./contacts       # scan + regenerate in place (go:generate)
//	obicomp -in classes.xml -out ./model
//	obicomp -in classes.xml       # single concatenated file to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"objectswap/internal/schema"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obicomp:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input class schema (.xml) or annotated Go source (.go)")
	out := flag.String("out", "", "output: directory for per-class files, .go file or stdout when empty")
	dir := flag.String("dir", "", "scan this directory for schemas and annotated structs, regenerate in place")
	flag.Parse()

	switch {
	case *dir != "":
		if *in != "" || *out != "" {
			return fmt.Errorf("-dir does not combine with -in/-out")
		}
		s, err := scanDir(*dir)
		if err != nil {
			return err
		}
		return emitDir(s, *dir)
	case *in != "":
		s, err := parseInput(*in)
		if err != nil {
			return err
		}
		if len(s.Classes) == 0 {
			return fmt.Errorf("%s declares no classes", *in)
		}
		if *out == "" || strings.HasSuffix(*out, ".go") {
			src, err := schema.Generate(s)
			if err != nil {
				return err
			}
			if *out == "" {
				_, err = os.Stdout.Write(src)
				return err
			}
			if err := writeAtomic(*out, src); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "obicomp: generated %d classes into %s\n", len(s.Classes), *out)
			return nil
		}
		return emitDir(s, *out)
	default:
		return fmt.Errorf("missing -in file or -dir directory")
	}
}

// parseInput reads one schema source, XML or Go.
func parseInput(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".go") {
		return schema.ParseGoSource(path, data)
	}
	return schema.Parse(data)
}

// scanDir collects every class declaration in dir: XML schemas (except
// generated ones) and annotated structs in Go sources (except generated and
// test files). Classes merge into one schema; declaring the same class twice
// or mixing package names is an error.
func scanDir(dir string) (*schema.Schema, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	merged := &schema.Schema{}
	classSource := make(map[string]string)
	xmlPackage := ""
	add := func(src string, s *schema.Schema, fromGo bool) error {
		if len(s.Classes) == 0 {
			return nil
		}
		if fromGo {
			if merged.Package != "" && merged.Package != s.Package {
				return fmt.Errorf("package %q in %s conflicts with %q", s.Package, src, merged.Package)
			}
			merged.Package = s.Package
		} else {
			if xmlPackage != "" && xmlPackage != s.Package {
				return fmt.Errorf("package %q in %s conflicts with %q", s.Package, src, xmlPackage)
			}
			xmlPackage = s.Package
		}
		for _, c := range s.Classes {
			if prev, dup := classSource[c.Name]; dup {
				return fmt.Errorf("class %q declared in both %s and %s", c.Name, prev, src)
			}
			classSource[c.Name] = src
			merged.Classes = append(merged.Classes, c)
		}
		return nil
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".xml") && !strings.HasSuffix(name, "_gen.xml"):
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			s, err := schema.Parse(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			if err := add(path, s, false); err != nil {
				return nil, err
			}
		case strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_gen.go") && !strings.HasSuffix(name, "_test.go"):
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			s, err := schema.ParseGoSource(path, data)
			if err != nil {
				return nil, err
			}
			if err := add(path, s, true); err != nil {
				return nil, err
			}
		}
	}
	if len(merged.Classes) == 0 {
		return nil, fmt.Errorf("no class declarations found in %s", dir)
	}
	if merged.Package == "" {
		merged.Package = xmlPackage
	} else if xmlPackage != "" && xmlPackage != merged.Package {
		return nil, fmt.Errorf("XML schema package %q conflicts with Go package %q", xmlPackage, merged.Package)
	}
	sort.Slice(merged.Classes, func(i, j int) bool {
		return merged.Classes[i].Name < merged.Classes[j].Name
	})
	return merged, nil
}

// emitDir generates the per-class file set into dir. The whole set is
// rendered and validated before the first byte hits a final path.
func emitDir(s *schema.Schema, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files, err := schema.GenerateFiles(s)
	if err != nil {
		return err
	}
	for _, f := range files {
		if err := writeAtomic(filepath.Join(dir, f.Name), f.Data); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "obicomp: generated %d classes (%d files) into %s\n",
		len(s.Classes), len(files), dir)
	return nil
}

// writeAtomic stages data next to path and renames it into place, so a
// failure mid-write can never leave a truncated generated file.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
