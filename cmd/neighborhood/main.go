// Command neighborhood simulates the paper's envisioned future: "a myriad of
// small memory-enabled devices with wireless connectivity, scattered
// all-over, available to any user either to store data or to relay
// communications".
//
// Several constrained PDAs work through skewed access patterns against their
// own object graphs while storage nodes come and go (link churn). The
// middleware reacts: pressure policies demote cold clusters to whichever
// node is reachable, departures defer drops, returns retry them, and every
// device stays correct throughout. A time-series of middleware activity is
// printed per round.
//
// Usage:
//
//	neighborhood [-pdas 3] [-nodes 2] [-rounds 12] [-heap 24576] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"objectswap"
	"objectswap/internal/event"
	"objectswap/internal/heap"
	"objectswap/internal/link"
	"objectswap/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "neighborhood:", err)
		os.Exit(1)
	}
}

// pda bundles one simulated constrained device.
type pda struct {
	sys    *objectswap.System
	chains int
	zipf   *rand.Zipf
	swaps  *int64
	faults *int64
}

func run() error {
	pdas := flag.Int("pdas", 3, "constrained devices")
	nodes := flag.Int("nodes", 2, "storage nodes in the neighborhood")
	rounds := flag.Int("rounds", 12, "simulation rounds")
	heapBytes := flag.Int64("heap", 24<<10, "per-PDA heap capacity")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))

	// The neighborhood: storage nodes behind Bluetooth-class links.
	type node struct {
		name  string
		store *store.Mem
		up    bool
	}
	nodeList := make([]*node, *nodes)
	for i := range nodeList {
		nodeList[i] = &node{name: fmt.Sprintf("node-%d", i), store: store.NewMem(0), up: true}
	}

	// The PDAs.
	devices := make([]*pda, *pdas)
	for p := range devices {
		sys, err := objectswap.New(objectswap.Config{
			HeapCapacity:    *heapBytes,
			MemoryThreshold: 0.7,
			DeviceName:      fmt.Sprintf("pda-%d", p),
		})
		if err != nil {
			return err
		}
		for _, n := range nodeList {
			clock := &link.VirtualClock{}
			if err := sys.AttachDevice(n.name, link.Wrap(n.store, link.Bluetooth1(), clock)); err != nil {
				return err
			}
		}
		var swaps, faults int64
		sys.Bus().Subscribe(event.TopicSwapOut, func(event.Event) { swaps++ })
		sys.Bus().Subscribe(event.TopicSwapIn, func(event.Event) { faults++ })

		cls := heap.NewClass("Item",
			heap.FieldDef{Name: "payload", Kind: heap.KindBytes},
			heap.FieldDef{Name: "next", Kind: heap.KindRef},
		)
		cls.AddMethod("next", func(call *heap.Call) ([]heap.Value, error) {
			v, err := call.Self.FieldByName("next")
			if err != nil {
				return nil, err
			}
			return []heap.Value{v}, nil
		})
		sys.MustRegisterClass(cls)

		// Build the device's working set: chains of clusters.
		const chains, perChain = 6, 40
		payload := make([]byte, 64)
		for c := 0; c < chains; c++ {
			cluster := sys.NewCluster()
			var prev *heap.Object
			for i := 0; i < perChain; i++ {
				o, err := sys.NewObject(cls, cluster)
				if err != nil {
					return fmt.Errorf("pda %d build: %w", p, err)
				}
				if err := sys.SetField(o.RefTo(), "payload", heap.Bytes(payload)); err != nil {
					return err
				}
				if prev == nil {
					if err := sys.SetRoot(fmt.Sprintf("chain-%d", c), o.RefTo()); err != nil {
						return err
					}
				} else if err := sys.SetField(prev.RefTo(), "next", o.RefTo()); err != nil {
					return err
				}
				prev = o
			}
		}
		devices[p] = &pda{
			sys:    sys,
			chains: chains,
			zipf:   rand.NewZipf(rand.New(rand.NewSource(*seed+int64(p))), 1.3, 4, chains-1),
			swaps:  &swaps,
			faults: &faults,
		}
	}

	fmt.Printf("%-6s %-24s %10s %10s %12s\n", "round", "neighborhood", "swap-outs", "swap-ins", "stored bytes")
	for round := 0; round < *rounds; round++ {
		// Churn: each node flips availability with small probability.
		for _, n := range nodeList {
			if r.Float64() < 0.25 {
				n.up = !n.up
				for _, d := range devices {
					d.sys.SetDeviceAvailable(n.name, n.up)
				}
			}
		}

		// Each PDA performs a burst of skewed accesses.
		for p, d := range devices {
			for a := 0; a < 8; a++ {
				chain := int(d.zipf.Uint64())
				root, err := d.sys.MustRoot(fmt.Sprintf("chain-%d", chain))
				if err != nil {
					return err
				}
				cur, err := d.sys.AssignedCursor(root)
				if err != nil {
					// The chain head may be unreachable right now (all
					// nodes down); skip the burst.
					continue
				}
				steps := 5 + r.Intn(20)
				for s := 0; s < steps && !cur.IsNil(); s++ {
					d.sys.Monitor().Check()
					cur, err = d.sys.Field(cur, "next")
					if err != nil {
						// With every node down, demotion is impossible; the
						// burst is abandoned, not fatal — connectivity will
						// return.
						break
					}
				}
			}
			_ = p
		}

		// Round summary.
		var swaps, faults, stored int64
		for _, d := range devices {
			swaps += *d.swaps
			faults += *d.faults
		}
		status := ""
		for _, n := range nodeList {
			st, _ := n.store.Stats(context.Background())
			stored += st.Used
			if n.up {
				status += "+"
			} else {
				status += "-"
			}
		}
		fmt.Printf("%-6d %-24s %10d %10d %12d\n", round, status, swaps, faults, stored)
	}

	fmt.Println("\nfinal per-device state:")
	for p, d := range devices {
		st := d.sys.Heap().StatsSnapshot()
		fmt.Printf("  pda-%d: %d/%d bytes, %d swap-outs, %d swap-ins\n",
			p, st.Used, st.Capacity, *d.swaps, *d.faults)
	}

	// Middleware bookkeeping must be spotless after the churn.
	for p, d := range devices {
		if errs := d.sys.Runtime().Manager().CheckInvariants(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "invariant violation on pda-%d: %v\n", p, e)
			}
			return fmt.Errorf("%d invariant violations", len(errs))
		}
	}
	// Correctness sweep: every node of every chain must still be reachable
	// once at least one storage node is up.
	for _, n := range nodeList {
		n.up = true
		for _, d := range devices {
			d.sys.SetDeviceAvailable(n.name, true)
		}
	}
	for p, d := range devices {
		for c := 0; c < d.chains; c++ {
			root, err := d.sys.MustRoot(fmt.Sprintf("chain-%d", c))
			if err != nil {
				return err
			}
			cur, err := d.sys.AssignedCursor(root)
			if err != nil {
				return err
			}
			count := 0
			for !cur.IsNil() {
				cur, err = d.sys.Field(cur, "next")
				if err != nil {
					return fmt.Errorf("pda %d chain %d node %d: %w", p, c, count, err)
				}
				count++
			}
			if count != 40 {
				return fmt.Errorf("pda %d chain %d: %d nodes, want 40", p, c, count)
			}
		}
	}
	fmt.Println("correctness sweep: all chains intact on every device — OK")
	return nil
}
